package universal

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

// WaitFree is the paper's Algorithm 4: a wait-free universal
// construction. It extends the lock-free list with a helping mechanism:
// a process announces its invocation in an <ANN, i, inv> tuple, and each
// list position pos has a preferred process (pos mod n). The access
// policy (Fig. 8) forbids threading anything at a position whose
// preferred process has an announced-but-unthreaded invocation — so a
// correct process's invocation is threaded within at most n positions
// even against n−1 Byzantine contenders (Lemmas 4-5).
//
// Unlike the lock-free construction, this one is not uniform: processes
// must know each other's identities to help.
//
// A WaitFree instance is one process's handle; it is not safe for
// concurrent use by multiple goroutines.
type WaitFree struct {
	ts      peats.TupleSpace
	obj     Object
	procs   []policy.ProcessID
	index   int64
	counter int64
	pos     int64
	steps   int64
}

// NewWaitFree returns process self's replica of an emulated object of
// the given type over ts, which should be protected by WaitFreePolicy
// with the same process list. It returns an error if self is not in
// procs.
func NewWaitFree(ts peats.TupleSpace, typ Type, self policy.ProcessID, procs []policy.ProcessID) (*WaitFree, error) {
	idx := -1
	for i, p := range procs {
		if p == self {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("universal: process %q not in participant set", self)
	}
	cp := make([]policy.ProcessID, len(procs))
	copy(cp, procs)
	return &WaitFree{ts: ts, obj: typ.New(), procs: cp, index: int64(idx)}, nil
}

// Steps returns the number of list positions examined by the last Invoke.
func (u *WaitFree) Steps() int64 { return u.steps }

// wrapUnique makes an invocation globally unique by prefixing the
// invoker index and a per-process sequence number (the paper's
// "timestamp plus invoker identification").
func wrapUnique(index, counter int64, inv []byte) []byte {
	b := binary.AppendUvarint(nil, uint64(index))
	b = binary.AppendUvarint(b, uint64(counter))
	return append(b, inv...)
}

// unwrapUnique strips the uniqueness prefix, returning the payload.
func unwrapUnique(b []byte) ([]byte, bool) {
	_, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, false
	}
	_, m := binary.Uvarint(b[n:])
	if m <= 0 {
		return nil, false
	}
	return b[n+m:], true
}

// Invoke executes inv on the emulated object and returns its reply.
// It is wait-free: it completes in a bounded number of its own steps
// regardless of the behaviour of other processes.
func (u *WaitFree) Invoke(ctx context.Context, rawInv []byte) ([]byte, error) {
	u.counter++
	inv := wrapUnique(u.index, u.counter, rawInv)
	n := int64(len(u.procs))
	u.steps = 0

	// Line 4: announce.
	if err := u.ts.Out(ctx, tuple.T(tuple.Str(tagAnn), tuple.Int(u.index), tuple.Bytes(inv))); err != nil {
		return nil, fmt.Errorf("wait-free universal: announce: %w", err)
	}

	var reply []byte
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("wait-free universal: %w", err)
		}
		u.pos++
		u.steps++
		preferred := u.pos % n

		var einv []byte
		seqT, occupied, err := u.ts.Rdp(ctx, tuple.T(tuple.Str(tagSeq), tuple.Int(u.pos), tuple.Formal("einv")))
		if err != nil {
			return nil, fmt.Errorf("wait-free universal: read position: %w", err)
		}
		if !occupied {
			// Lines 9-15: determine the invocation to thread, helping
			// the preferred process if it has an unthreaded announcement.
			tinv := inv
			if u.index != preferred {
				annT, hasAnn, err := u.ts.Rdp(ctx, tuple.T(tuple.Str(tagAnn), tuple.Int(preferred), tuple.Formal("tinv")))
				if err != nil {
					return nil, fmt.Errorf("wait-free universal: read announcement: %w", err)
				}
				if hasAnn {
					pinv, _ := annT.Field(2).BytesValue()
					_, threaded, err := u.ts.Rdp(ctx, tuple.T(tuple.Str(tagSeq), tuple.Any(), tuple.Bytes(pinv)))
					if err != nil {
						return nil, fmt.Errorf("wait-free universal: check threaded: %w", err)
					}
					if !threaded {
						tinv = pinv // help the preferred process
					}
				}
			}
			// Lines 16-18: thread tinv.
			inserted, matched, err := u.ts.Cas(ctx,
				tuple.T(tuple.Str(tagSeq), tuple.Int(u.pos), tuple.Formal("einv")),
				tuple.T(tuple.Str(tagSeq), tuple.Int(u.pos), tuple.Bytes(tinv)))
			switch {
			case errors.Is(err, peats.ErrDenied):
				// The preferred process announced between our reads and
				// the cas; retry the same position with fresh reads.
				u.pos--
				u.steps--
				continue
			case err != nil:
				return nil, fmt.Errorf("wait-free universal: thread: %w", err)
			case inserted:
				einv = tinv
			default:
				einv, _ = matched.Field(2).BytesValue()
			}
		} else {
			einv, _ = seqT.Field(2).BytesValue()
		}

		// Line 20: execute the threaded invocation on the local state.
		r := u.applyThreaded(einv)
		// Line 21: repeat until our own invocation has executed.
		if bytes.Equal(einv, inv) {
			reply = r
			break
		}
	}

	// Line 22: withdraw the announcement.
	if _, _, err := u.ts.Inp(ctx, tuple.T(tuple.Str(tagAnn), tuple.Int(u.index), tuple.Bytes(inv))); err != nil {
		return nil, fmt.Errorf("wait-free universal: withdraw announcement: %w", err)
	}
	return reply, nil
}

// applyThreaded applies one threaded invocation to the local state.
// Invocations that do not carry a valid uniqueness prefix (only a
// Byzantine process can thread those) are skipped deterministically, so
// all correct processes still agree on the state.
func (u *WaitFree) applyThreaded(einv []byte) []byte {
	payload, ok := unwrapUnique(einv)
	if !ok {
		return errReply("universal: malformed threaded invocation")
	}
	return u.obj.Apply(payload)
}

// WaitFreePolicy is the access policy of Fig. 8 for n = len(procs)
// processes. It extends the lock-free policy (Fig. 7) with:
//
//	Rrdp: any process may read;
//	Rout: p_i may insert <ANN, i, inv> (only its own index, one
//	      announcement at a time);
//	Rinp: p_i may withdraw only its own announcements;
//	Rcas: the Fig. 7 list rules, plus the helping constraint — the cas
//	      may execute only if (1) the position's preferred process has
//	      no announcement, or (2) its announced invocation is already
//	      threaded, or (3) the entry being threaded is that announced
//	      invocation.
func WaitFreePolicy(procs []policy.ProcessID) policy.Policy {
	n := int64(len(procs))
	indexOf := make(map[policy.ProcessID]int64, len(procs))
	for i, p := range procs {
		indexOf[p] = int64(i)
	}

	rout := policy.And(
		policy.EntryArity(3),
		policy.EntryField(0, tuple.Str(tagAnn)),
		policy.Check(func(inv policy.Invocation, st policy.StateView) bool {
			idx, ok := indexOf[inv.Invoker]
			if !ok {
				return false
			}
			i, isInt := inv.Entry.Field(1).IntValue()
			if !isInt || i != idx {
				return false
			}
			if _, isBytes := inv.Entry.Field(2).BytesValue(); !isBytes {
				return false
			}
			// One announcement at a time (well-formedness).
			_, pending := st.Rdp(tuple.T(tuple.Str(tagAnn), tuple.Int(idx), tuple.Any()))
			return !pending
		}),
	)

	rinp := policy.And(
		policy.TemplateArity(3),
		policy.TemplateField(0, tuple.Str(tagAnn)),
		policy.Check(func(inv policy.Invocation, _ policy.StateView) bool {
			idx, ok := indexOf[inv.Invoker]
			if !ok {
				return false
			}
			i, isInt := inv.Template.Field(1).IntValue()
			return isInt && i == idx
		}),
	)

	helping := policy.Check(func(inv policy.Invocation, st policy.StateView) bool {
		pos, _ := inv.Entry.Field(1).IntValue()
		preferred := pos % n
		annT, hasAnn := st.Rdp(tuple.T(tuple.Str(tagAnn), tuple.Int(preferred), tuple.Formal("y")))
		if !hasAnn {
			return true // condition 1: no announcement
		}
		pinv := annT.Field(2)
		if _, threaded := st.Rdp(tuple.T(tuple.Str(tagSeq), tuple.Any(), pinv)); threaded {
			return true // condition 2: already threaded
		}
		return inv.Entry.Field(2).Equal(pinv) // condition 3: threading it now
	})

	rcas := policy.And(
		policy.TemplateArity(3),
		policy.TemplateField(0, tuple.Str(tagSeq)),
		policy.TemplateFieldFormal(2),
		policy.EntryArity(3),
		policy.EntryField(0, tuple.Str(tagSeq)),
		policy.Check(samePosAndContiguous),
		helping,
	)

	return policy.New(
		policy.Rule{Name: "Rrd", Op: policy.OpRd, When: policy.Always},
		policy.Rule{Name: "Rrdp", Op: policy.OpRdp, When: policy.Always},
		policy.Rule{Name: "Rout", Op: policy.OpOut, When: rout},
		policy.Rule{Name: "Rinp", Op: policy.OpInp, When: rinp},
		policy.Rule{Name: "Rcas", Op: policy.OpCas, When: rcas},
	)
}
