package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"peats/internal/bft"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
)

// ShardsConfig sizes the shard-contention comparison. The zero value
// selects defaults sized for a laptop run; CI smoke-tests the path
// with tiny parameters.
type ShardsConfig struct {
	// Shards lists the shard counts to sweep.
	Shards []int
	// Writers is the number of concurrent writers keeping ordered
	// execution busy while reads are measured. All writers share one
	// tuple key, so a write (or a whole ordered batch) write-locks
	// exactly one shard regardless of the shard count — the read
	// scaling then isolates how much of the space a write pins.
	Writers int
	// Readers is the number of concurrent readers, each probing its
	// own key (spread across shards by routing).
	Readers int
	// Duration is the measured window of the space-level contention
	// run per shard count.
	Duration time.Duration
	// ReadsPerReader is how many fast-path rdp probes each reader
	// issues in the cluster-level measurement.
	ReadsPerReader int
	// BatchSize is the agreement batch size for the cluster-level
	// writer load.
	BatchSize int
	// Resident is how many filler tuples the cluster-level space
	// holds. The write policy's reference-monitor predicate quantifies
	// over the resident state (a quota rule, like the paper's
	// default-consensus justification rule), so larger residencies make
	// each monitored write hold its shard's write lock longer.
	Resident int
	// Seed drives the randomized placement of the resident filler set
	// across tag keys (and therefore shards). Two runs with the same
	// seed lay out identical state; the CLI logs it so any run
	// reproduces exactly.
	Seed int64
}

func (c ShardsConfig) withDefaults() ShardsConfig {
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 4, 16}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Writers <= 0 {
		c.Writers = 4
	}
	if c.Readers <= 0 {
		c.Readers = 4
	}
	if c.Duration <= 0 {
		c.Duration = 500 * time.Millisecond
	}
	if c.ReadsPerReader <= 0 {
		c.ReadsPerReader = 400
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.Resident <= 0 {
		c.Resident = 600
	}
	return c
}

// ShardsRow is one measurement of the sharded-space comparison: read
// and write throughput under mixed contention at one shard count.
// Layer "space" rows measure the space core directly (concurrent
// goroutines on one Space — lock contention isolated from the
// protocol); layer "cluster" rows measure the end-to-end read-only
// fast path on the in-proc replicated transport.
type ShardsRow struct {
	Layer        string  `json:"layer"` // "space" or "cluster"
	Shards       int     `json:"shards"`
	Writers      int     `json:"writers"`
	Readers      int     `json:"readers"`
	ReadOps      int     `json:"read_ops"`
	ReadsPerSec  float64 `json:"reads_per_sec"`
	AvgReadUs    float64 `json:"avg_read_latency_us"`
	WritesPerSec float64 `json:"writes_per_sec"`
}

// ShardsTable measures mixed read/write contention per shard count at
// two layers.
//
// The space layer runs Writers goroutines hammering out/inp on one
// shared key against Readers goroutines issuing keyed rdp probes, all
// on a single Space. With one shard every read serialises on the same
// RWMutex the writers queue on — under sustained writer pressure an
// rdp pays the writer-preference park/unpark toll, orders of magnitude
// above the read itself — while with many shards the readers' shards
// are uncontended and reads proceed at full speed. This isolates the
// contention the sharded core removes, and is where the read-scaling
// acceptance number comes from.
//
// The cluster layer runs the same shape end-to-end on the in-proc
// replicated transport: ordered, reference-monitor-guarded writes
// (the quota predicate scans the resident state under the write lock)
// against read-only fast-path probes. Protocol costs (ordering,
// voting, marshalling) dominate per-op time there, so its scaling is
// flatter on few cores; it reports what the fast path delivers
// through the whole stack.
func ShardsTable(ctx context.Context, cfg ShardsConfig) ([]ShardsRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]ShardsRow, 0, 2*len(cfg.Shards))
	for _, shards := range cfg.Shards {
		row, err := spaceContention(shards, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, shards := range cfg.Shards {
		row, err := clusterContention(ctx, shards, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// spaceContention measures the space core under mixed load: Writers
// goroutines cycling out/inp on one shared key (so writes pin exactly
// one shard) and Readers goroutines probing per-reader keys, for
// cfg.Duration.
func spaceContention(shards int, cfg ShardsConfig) (ShardsRow, error) {
	s, err := space.NewSharded(space.DefaultEngine, shards)
	if err != nil {
		return ShardsRow{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Resident; i++ {
		if err := s.Out(tuple.T(tuple.Str(fmt.Sprintf("FILL%d", rng.Intn(64))), tuple.Int(int64(i)))); err != nil {
			return ShardsRow{}, err
		}
	}
	for r := 0; r < cfg.Readers; r++ {
		if err := s.Out(tuple.T(tuple.Str(fmt.Sprintf("NEEDLE%d", r)), tuple.Int(1))); err != nil {
			return ShardsRow{}, err
		}
	}

	var (
		stop       atomic.Bool
		wops, rops atomic.Int64
		wg         sync.WaitGroup
	)
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			entry := tuple.T(tuple.Str("LOAD"), tuple.Int(int64(w)))
			tmpl := tuple.T(tuple.Str("LOAD"), tuple.Any())
			for i := 0; !stop.Load(); i++ {
				if i%2 == 0 {
					_ = s.Out(entry)
				} else {
					s.Inp(tmpl)
				}
				wops.Add(1)
			}
		}(w)
	}
	errs := make(chan error, cfg.Readers)
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tmpl := tuple.T(tuple.Str(fmt.Sprintf("NEEDLE%d", r)), tuple.Any())
			for !stop.Load() {
				if _, ok := s.Rdp(tmpl); !ok {
					errs <- fmt.Errorf("space reader %d: needle missing", r)
					return
				}
				rops.Add(1)
			}
		}(r)
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return ShardsRow{}, err
	}

	secs := cfg.Duration.Seconds()
	reads := rops.Load()
	row := ShardsRow{
		Layer:        "space",
		Shards:       shards,
		Writers:      cfg.Writers,
		Readers:      cfg.Readers,
		ReadOps:      int(reads),
		ReadsPerSec:  float64(reads) / secs,
		WritesPerSec: float64(wops.Load()) / secs,
	}
	if reads > 0 {
		row.AvgReadUs = secs * 1e6 / float64(reads) * float64(cfg.Readers)
	}
	return row, nil
}

// shardsPolicy is the reference monitor for the cluster-level
// workload: writes are admitted under a state quota — the predicate
// counts the resident tuples of the write's arity, quantifying over
// the whole space exactly like the paper's default-consensus ⊥
// justification rule — while reads are allowed unconditionally.
// Monitored writes therefore hold their shard's write lock for
// O(resident) per operation: the realistic cost profile the sharded
// core exists for, cheap concurrent reads against expensive guarded
// writes.
func shardsPolicy(quota int) policy.Policy {
	wild := tuple.T(tuple.Any(), tuple.Any())
	underQuota := func(_ policy.Invocation, st policy.StateView) bool {
		return st.CountMatching(wild) < quota
	}
	return policy.New(
		policy.Rule{Name: "Rout-quota", Op: policy.OpOut, When: underQuota},
		policy.Rule{Name: "Rinp-quota", Op: policy.OpInp, When: underQuota},
		policy.Rule{Name: "Rrdp", Op: policy.OpRdp},
		policy.Rule{Name: "RrdAll", Op: policy.OpRdAll},
		policy.Rule{Name: "Rcas", Op: policy.OpCas},
	)
}

// clusterContention measures the end-to-end shape on the in-proc
// transport: a replicated cluster (n = 4) runs writer clients issuing
// ordered monitor-guarded out/inp load without pause while reader
// clients drive read-only rdp probes through the fast path.
func clusterContention(ctx context.Context, shards int, cfg ShardsConfig) (ShardsRow, error) {
	pol := shardsPolicy(cfg.Resident * 1000)
	services := make([]bft.Service, 4)
	for i := range services {
		svc, err := bft.NewSpaceServiceWithConfig(pol, "", shards)
		if err != nil {
			return ShardsRow{}, err
		}
		services[i] = svc
	}
	cl, err := bft.NewCluster(1, services, bft.WithBatchSize(cfg.BatchSize))
	if err != nil {
		return ShardsRow{}, err
	}
	defer cl.Stop()

	// Seed the resident filler set (what the write quota predicate
	// scans) and one needle per reader, each under its own key so keyed
	// reads spread across shards; then let every replica execute the
	// seeds so the read-only quorum forms on the first round trip.
	seeder := bft.NewRemoteSpace(cl.Client("seeder"))
	seeds := 0
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Resident; i++ {
		if err := seeder.Out(ctx, tuple.T(tuple.Str(fmt.Sprintf("FILL%d", rng.Intn(64))), tuple.Int(int64(i)))); err != nil {
			return ShardsRow{}, err
		}
		seeds++
	}
	for r := 0; r < cfg.Readers; r++ {
		if err := seeder.Out(ctx, tuple.T(tuple.Str(fmt.Sprintf("NEEDLE%d", r)), tuple.Int(1))); err != nil {
			return ShardsRow{}, err
		}
		seeds++
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, rep := range cl.Replicas {
		for rep.Executed() < uint64(seeds) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	// All clients are provisioned sequentially before any load starts:
	// Cluster.Client installs keys on every replica keyring, which is
	// not safe concurrently with traffic.
	writeSpaces := make([]*bft.RemoteSpace, cfg.Writers)
	for w := range writeSpaces {
		writeSpaces[w] = bft.NewRemoteSpace(cl.Client(fmt.Sprintf("writer%d", w)))
	}
	readSpaces := make([]*bft.RemoteSpace, cfg.Readers)
	for r := range readSpaces {
		readSpaces[r] = bft.NewRemoteSpace(cl.Client(fmt.Sprintf("reader%d", r)))
	}

	// Writers: sustained ordered load on the shared "LOAD" key until
	// the readers finish; the op count feeds the writes/sec column.
	var (
		stop     atomic.Bool
		writeOps atomic.Int64
		wg       sync.WaitGroup
		werrMu   sync.Mutex
		werr     error
	)
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ts := writeSpaces[w]
			entry := tuple.T(tuple.Str("LOAD"), tuple.Int(int64(w)))
			tmpl := tuple.T(tuple.Str("LOAD"), tuple.Any())
			for i := 0; !stop.Load(); i++ {
				var err error
				if i%2 == 0 {
					err = ts.Out(ctx, entry)
				} else {
					_, _, err = ts.Inp(ctx, tmpl)
				}
				if err != nil {
					if ctx.Err() == nil && !stop.Load() {
						werrMu.Lock()
						if werr == nil {
							werr = err
						}
						werrMu.Unlock()
					}
					return
				}
				writeOps.Add(1)
			}
		}(w)
	}

	// Readers: each probes its own needle on the read-only fast path.
	// Clients are reused across waves — a fresh client under a reused
	// identity would restart request IDs and be dropped by at-most-once
	// bookkeeping. A warm-up wave runs unmeasured so quorum formation
	// stays out of the numbers.
	readWave := func(reads int) (time.Duration, error) {
		var rwg sync.WaitGroup
		errs := make(chan error, cfg.Readers)
		start := time.Now()
		for r := 0; r < cfg.Readers; r++ {
			rwg.Add(1)
			go func(r int) {
				defer rwg.Done()
				tmpl := tuple.T(tuple.Str(fmt.Sprintf("NEEDLE%d", r)), tuple.Any())
				for i := 0; i < reads; i++ {
					if _, ok, err := readSpaces[r].Rdp(ctx, tmpl); err != nil || !ok {
						errs <- fmt.Errorf("reader %d rdp %d: found=%v err=%v", r, i, ok, err)
						return
					}
				}
			}(r)
		}
		rwg.Wait()
		elapsed := time.Since(start)
		close(errs)
		return elapsed, <-errs
	}

	warm := cfg.ReadsPerReader / 4
	if warm < 2 {
		warm = 2
	}
	if _, err := readWave(warm); err != nil {
		stop.Store(true)
		wg.Wait()
		return ShardsRow{}, err
	}
	writeStart := writeOps.Load()
	start := time.Now()
	elapsed, rerr := readWave(cfg.ReadsPerReader)
	writesDuring := writeOps.Load() - writeStart
	writeElapsed := time.Since(start)

	stop.Store(true)
	wg.Wait()
	if rerr != nil {
		return ShardsRow{}, rerr
	}
	if werr != nil {
		return ShardsRow{}, werr
	}

	readOps := cfg.Readers * cfg.ReadsPerReader
	return ShardsRow{
		Layer:        "cluster",
		Shards:       shards,
		Writers:      cfg.Writers,
		Readers:      cfg.Readers,
		ReadOps:      readOps,
		ReadsPerSec:  float64(readOps) / elapsed.Seconds(),
		AvgReadUs:    float64(elapsed.Microseconds()) / float64(readOps) * float64(cfg.Readers),
		WritesPerSec: float64(writesDuring) / writeElapsed.Seconds(),
	}, nil
}

// ReadScaling returns each shard count's space-layer read throughput
// relative to the 1-shard row (empty when no 1-shard row exists) —
// the contention-isolation number the sharded core is held to.
func ReadScaling(rows []ShardsRow) map[int]float64 {
	return layerScaling(rows, "space")
}

// ClusterReadScaling is ReadScaling for the end-to-end cluster rows.
func ClusterReadScaling(rows []ShardsRow) map[int]float64 {
	return layerScaling(rows, "cluster")
}

func layerScaling(rows []ShardsRow, layer string) map[int]float64 {
	var base float64
	for _, r := range rows {
		if r.Layer == layer && r.Shards == 1 {
			base = r.ReadsPerSec
		}
	}
	out := make(map[int]float64)
	for _, r := range rows {
		if r.Layer == layer && base > 0 {
			out[r.Shards] = r.ReadsPerSec / base
		}
	}
	return out
}

// WriteShardsTable renders the shard-contention comparison.
func WriteShardsTable(w io.Writer, rows []ShardsRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "layer\tshards\twriters\treaders\treads/sec\tavg read latency\twrites/sec")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.0f\t%.1fµs\t%.0f\n",
			r.Layer, r.Shards, r.Writers, r.Readers, r.ReadsPerSec, r.AvgReadUs, r.WritesPerSec)
	}
	tw.Flush()
	spaceScaling := ReadScaling(rows)
	for _, r := range rows {
		if r.Layer == "space" && r.Shards != 1 && spaceScaling[r.Shards] > 0 {
			fmt.Fprintf(w, "space-level read scaling at %d shards: %.1fx under concurrent writers\n",
				r.Shards, spaceScaling[r.Shards])
		}
	}
	clusterScaling := ClusterReadScaling(rows)
	for _, r := range rows {
		if r.Layer == "cluster" && r.Shards != 1 && clusterScaling[r.Shards] > 0 {
			fmt.Fprintf(w, "cluster read scaling at %d shards: %.1fx (protocol-dominated; grows with cores)\n",
				r.Shards, clusterScaling[r.Shards])
		}
	}
}

// shardsReport is the machine-readable artifact schema.
type shardsReport struct {
	reportMeta
	ReadScaling        map[int]float64 `json:"read_scaling"`
	ClusterReadScaling map[int]float64 `json:"cluster_read_scaling"`
	Rows               []ShardsRow     `json:"rows"`
}

// WriteShardsJSON writes the rows as a machine-readable JSON report.
func WriteShardsJSON(path string, rows []ShardsRow) error {
	return writeReportJSON(path, "shards", &shardsReport{
		ReadScaling:        ReadScaling(rows),
		ClusterReadScaling: ClusterReadScaling(rows),
		Rows:               rows,
	})
}
