package bench

import (
	"fmt"
	"io"
	"testing"
	"text/tabwriter"

	"peats/internal/space"
	"peats/internal/tuple"
)

// StoreRow is one measurement of the storage-engine comparison: the
// cost of one operation against a space holding Size resident tuples of
// mixed arities, backed by Engine.
type StoreRow struct {
	Op      string
	Size    int
	Engine  space.Engine
	NsPerOp int64
}

// StoreSizes are the resident-set sizes the engine comparison probes.
var StoreSizes = []int{10, 100, 10000}

// StoreFill populates st with n tuples of mixed arities and tags, the
// probed tuple (tag "needle") last — the linear scan's worst case. It
// is the single definition of the engine-comparison workload, shared
// by the CLI stores table and the go-test benchmarks in
// internal/space. It returns the next free sequence number, for
// callers that keep inserting.
func StoreFill(st space.Store, n int) uint64 {
	seq := uint64(0)
	for i := 0; i < n-1; i++ {
		seq++
		tag := fmt.Sprintf("tag%d", i%17)
		if i%2 == 0 {
			st.Insert(tuple.T(tuple.Str(tag), tuple.Int(int64(i))), seq)
		} else {
			st.Insert(tuple.T(tuple.Str(tag), tuple.Int(int64(i)), tuple.Bool(true)), seq)
		}
	}
	seq++
	st.Insert(tuple.T(tuple.Str("needle"), tuple.Int(0)), seq)
	return seq + 1
}

// StoresTable measures rdp, inp and cas ns/op for every store engine at
// every size in sizes (StoreSizes when nil).
func StoresTable(sizes []int) ([]StoreRow, error) {
	if sizes == nil {
		sizes = StoreSizes
	}
	needle := tuple.T(tuple.Str("needle"), tuple.Any())
	absent := tuple.T(tuple.Str("absent"), tuple.Any())
	needleEntry := tuple.T(tuple.Str("needle"), tuple.Int(0))
	absentEntry := tuple.T(tuple.Str("absent"), tuple.Int(1))

	ops := []struct {
		name string
		loop func(st space.Store, seq *uint64, b *testing.B)
	}{
		{"rdp", func(st space.Store, _ *uint64, b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, ok := st.Find(needle, false); !ok {
					b.Fatal("needle not found")
				}
			}
		}},
		{"inp", func(st space.Store, seq *uint64, b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, ok := st.Find(needle, true); !ok {
					b.Fatal("needle not found")
				}
				st.Insert(needleEntry, *seq)
				*seq++
			}
		}},
		{"cas", func(st space.Store, seq *uint64, b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, ok := st.Find(absent, false); !ok {
					st.Insert(absentEntry, *seq)
					*seq++
				}
				if _, _, ok := st.Find(absent, true); !ok {
					b.Fatal("cas entry vanished")
				}
			}
		}},
	}

	var rows []StoreRow
	for _, op := range ops {
		for _, size := range sizes {
			for _, engine := range space.Engines() {
				st, err := space.NewStore(engine)
				if err != nil {
					return nil, err
				}
				seq := StoreFill(st, size)
				loop := op.loop
				res := testing.Benchmark(func(b *testing.B) { loop(st, &seq, b) })
				rows = append(rows, StoreRow{
					Op: op.name, Size: size, Engine: engine, NsPerOp: res.NsPerOp(),
				})
			}
		}
	}
	return rows, nil
}

// WriteStoresTable renders the engine comparison, one line per (op,
// size) with the slice baseline, the indexed engine, and the speedup.
func WriteStoresTable(w io.Writer, rows []StoreRow) {
	type key struct {
		op   string
		size int
	}
	byCell := make(map[key]map[space.Engine]int64)
	var order []key
	for _, r := range rows {
		k := key{r.Op, r.Size}
		if byCell[k] == nil {
			byCell[k] = make(map[space.Engine]int64)
			order = append(order, k)
		}
		byCell[k][r.Engine] = r.NsPerOp
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "op\ttuples\tslice ns/op\tindexed ns/op\tspeedup")
	for _, k := range order {
		cell := byCell[k]
		slice, indexed := cell[space.EngineSlice], cell[space.EngineIndexed]
		speedup := "-"
		if indexed > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(slice)/float64(indexed))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\n", k.op, k.size, slice, indexed, speedup)
	}
	tw.Flush()
}
