package bench

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"peats/internal/bft"
	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
	"peats/internal/universal"
)

// AblationRow is one design-choice measurement: the same workload with
// the design element on and off (DESIGN.md §4 ablations).
type AblationRow struct {
	Name     string
	Baseline time.Duration // per-op, element off
	With     time.Duration // per-op, element on
	Note     string
}

// AblationTable measures the three ablations called out in DESIGN.md:
// reference-monitor overhead, the wait-free helping mechanism, and the
// replication quorum size.
func AblationTable(ctx context.Context, iters int) ([]AblationRow, error) {
	if iters <= 0 {
		iters = 2000
	}
	rows := make([]AblationRow, 0, 3)

	monitor, err := measureMonitorOverhead(ctx, iters)
	if err != nil {
		return nil, err
	}
	rows = append(rows, monitor)

	helping, err := measureHelpingOverhead(ctx, iters)
	if err != nil {
		return nil, err
	}
	rows = append(rows, helping)

	quorum, err := measureQuorumOverhead(ctx, iters/20+1)
	if err != nil {
		return nil, err
	}
	rows = append(rows, quorum)
	return rows, nil
}

// measureMonitorOverhead times out+rdp pairs under the trivial policy
// vs a stateful rule set (§7's "little extra processing" claim).
func measureMonitorOverhead(ctx context.Context, iters int) (AblationRow, error) {
	run := func(pol policy.Policy) (time.Duration, error) {
		s := peats.New(pol)
		h := s.Handle("p0")
		start := time.Now()
		for i := 0; i < iters; i++ {
			entry := tuple.T(tuple.Str("PROPOSE"), tuple.Str("p0"), tuple.Int(int64(i)))
			if err := h.Out(ctx, entry); err != nil {
				return 0, err
			}
			if _, _, err := h.Rdp(ctx, tuple.T(tuple.Str("PROPOSE"), tuple.Str("p0"), tuple.Formal("v"))); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(2*iters), nil
	}
	stateful := policy.New(
		policy.Rule{Name: "Rrdp", Op: policy.OpRdp, When: policy.Always},
		policy.Rule{Name: "Rout", Op: policy.OpOut, When: policy.And(
			policy.EntryArity(3),
			policy.EntryField(0, tuple.Str("PROPOSE")),
			policy.EntryFieldIsInvoker(1),
		)},
	)
	base, err := run(policy.AllowAll())
	if err != nil {
		return AblationRow{}, err
	}
	with, err := run(stateful)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name: "reference monitor", Baseline: base, With: with,
		Note: "out+rdp under allow-all vs stateful rules",
	}, nil
}

// measureHelpingOverhead times uncontended counter increments through
// the lock-free vs the wait-free construction.
func measureHelpingOverhead(ctx context.Context, iters int) (AblationRow, error) {
	procs := []policy.ProcessID{"p0", "p1", "p2"}

	lf := universal.NewLockFree(peats.New(universal.LockFreePolicy()).Handle("p0"), universal.CounterType{})
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := lf.Invoke(ctx, universal.CounterInc()); err != nil {
			return AblationRow{}, err
		}
	}
	base := time.Since(start) / time.Duration(iters)

	wf, err := universal.NewWaitFree(peats.New(universal.WaitFreePolicy(procs)).Handle("p0"),
		universal.CounterType{}, "p0", procs)
	if err != nil {
		return AblationRow{}, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := wf.Invoke(ctx, universal.CounterInc()); err != nil {
			return AblationRow{}, err
		}
	}
	with := time.Since(start) / time.Duration(iters)
	return AblationRow{
		Name: "wait-free helping", Baseline: base, With: with,
		Note: "uncontended universal-construction op (Alg. 3 vs Alg. 4)",
	}, nil
}

// measureQuorumOverhead times replicated outs at f=1 vs f=2.
func measureQuorumOverhead(ctx context.Context, iters int) (AblationRow, error) {
	run := func(f int) (time.Duration, error) {
		n := 3*f + 1
		services := make([]bft.Service, n)
		for i := range services {
			services[i] = bft.NewSpaceService(policy.AllowAll())
		}
		cl, err := bft.NewCluster(f, services)
		if err != nil {
			return 0, err
		}
		defer cl.Stop()
		ts := bft.NewRemoteSpace(cl.Client("bench"))
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := ts.Out(ctx, tuple.T(tuple.Str("Q"), tuple.Int(int64(i)))); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(iters), nil
	}
	base, err := run(1)
	if err != nil {
		return AblationRow{}, err
	}
	with, err := run(2)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name: "replication quorum", Baseline: base, With: with,
		Note: "replicated out, f=1 (4 replicas) vs f=2 (7 replicas)",
	}, nil
}

// WriteAblationTable renders the ablation measurements.
func WriteAblationTable(w io.Writer, rows []AblationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ablation\toff\ton\tratio\tworkload")
	for _, r := range rows {
		ratio := float64(r.With) / float64(r.Baseline)
		fmt.Fprintf(tw, "%s\t%v\t%v\t%.2fx\t%s\n", r.Name, r.Baseline, r.With, ratio, r.Note)
	}
	tw.Flush()
}
