package bench

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"peats/internal/bft"
	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

// LatencyConfig sizes the commit-round comparison: the same ordered
// Submit workload against a committed-only cluster, a tentative one
// (replies at prepared, one round before the commit quorum), and a
// tentative one driven through the SubmitAsync/Flush pipeline. The
// zero value selects laptop-sized defaults; CI smoke-tests the path
// with tiny parameters.
type LatencyConfig struct {
	// Ops is the number of Submit calls measured per mode.
	Ops int
	// Depth is the SubmitAsync window flushed at once in the pipelined
	// mode.
	Depth int
	// Groups lists the fault bounds f to sweep (n = 3f+1 replicas).
	Groups []int
	// NetDelay is the simulated one-way link delay applied to every
	// in-process link. The raw in-process transport delivers in
	// nanoseconds, which hides the protocol rounds the tentative path
	// removes behind scheduler noise; a LAN-like delay makes the round
	// count the dominant term, as it is in a real deployment. Negative
	// disables the delay.
	NetDelay time.Duration
}

func (c LatencyConfig) withDefaults() LatencyConfig {
	if c.Ops <= 0 {
		c.Ops = 160
	}
	if c.Depth <= 1 {
		c.Depth = 8
	}
	if len(c.Groups) == 0 {
		c.Groups = []int{1, 2}
	}
	if c.NetDelay == 0 {
		c.NetDelay = 100 * time.Microsecond
	}
	if c.NetDelay < 0 {
		c.NetDelay = 0
	}
	return c
}

// LatencyRow is one measurement: cfg.Ops ordered writes through one
// reply mode, with the per-Submit latency distribution. In the
// pipelined mode a window of Depth submissions shares one agreement
// batch, so its per-op latency is the window latency divided by the
// window size — the amortized cost a pipelining client pays.
type LatencyRow struct {
	Mode      string  `json:"mode"` // "committed", "tentative", "tentative+pipelined"
	F         int     `json:"f"`    // fault bound; n = 3f+1 replicas
	Depth     int     `json:"depth"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	AvgMicros float64 `json:"avg_latency_us"`
	Percentiles
}

// LatencyTable measures Submit latency per reply mode and group size.
func LatencyTable(ctx context.Context, cfg LatencyConfig) ([]LatencyRow, error) {
	cfg = cfg.withDefaults()
	var rows []LatencyRow
	for _, f := range cfg.Groups {
		for _, mode := range []string{"committed", "tentative", "tentative+pipelined"} {
			row, err := latencyRun(ctx, f, mode, cfg)
			if err != nil {
				return nil, fmt.Errorf("latency bench (%s, f=%d): %w", mode, f, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func latencyRun(ctx context.Context, f int, mode string, cfg LatencyConfig) (LatencyRow, error) {
	ops, depth := cfg.Ops, cfg.Depth
	pol := policy.AllowAll()
	services := make([]bft.Service, 3*f+1)
	for i := range services {
		services[i] = bft.NewSpaceService(pol)
	}
	cl, err := bft.NewCluster(f, services,
		bft.WithBatchSize(64),
		bft.WithTentativeExecution(mode != "committed"))
	if err != nil {
		return LatencyRow{}, err
	}
	defer cl.Stop()
	ts := bft.NewRemoteSpace(cl.Client("lat"))
	if cfg.NetDelay > 0 {
		// The client endpoint registers on first use above; delay every
		// pair of links uniformly, replicas and client alike.
		all := append(append([]string{}, cl.IDs...), "lat")
		for _, a := range all {
			for _, b := range all {
				if a != b {
					cl.Net.SetLink(a, b, 0, cfg.NetDelay)
				}
			}
		}
	}

	// One op per Submit, alternating out and inp of the same key so the
	// resident space — and with it checkpoint cost — stays bounded. A
	// pipelined window keeps the order out-before-inp, so the inp never
	// misses.
	opAt := func(i int) peats.Op {
		entry := tuple.T(tuple.Str("LAT"), tuple.Int(int64(i/2)%64))
		if i%2 == 0 {
			return peats.OutOp(entry)
		}
		return peats.InpOp(entry)
	}
	submit := func(i int) error {
		_, err := ts.Submit(ctx, opAt(i))
		return err
	}

	warm := ops / 4
	if warm < 2 {
		warm = 2
	}
	warm += warm % 2 // pair out/inp so the space drains
	for i := 0; i < warm; i++ {
		if err := submit(i); err != nil {
			return LatencyRow{}, fmt.Errorf("warmup op %d: %w", i, err)
		}
	}

	samples := make([]time.Duration, 0, ops)
	start := time.Now()
	if mode == "tentative+pipelined" {
		for w := 0; w < ops; w += depth {
			k := depth
			if w+k > ops {
				k = ops - w
			}
			handles := make([]*bft.PendingSubmit, k)
			winStart := time.Now()
			for i := 0; i < k; i++ {
				handles[i] = ts.SubmitAsync(opAt(w + i))
			}
			if err := ts.Flush(ctx); err != nil {
				return LatencyRow{}, fmt.Errorf("flush at op %d: %w", w, err)
			}
			per := time.Since(winStart) / time.Duration(k)
			for _, h := range handles {
				if _, err := h.Results(); err != nil {
					return LatencyRow{}, fmt.Errorf("pipelined op: %w", err)
				}
				samples = append(samples, per)
			}
		}
	} else {
		for i := 0; i < ops; i++ {
			opStart := time.Now()
			if err := submit(i); err != nil {
				return LatencyRow{}, fmt.Errorf("op %d: %w", i, err)
			}
			samples = append(samples, time.Since(opStart))
		}
	}
	elapsed := time.Since(start)

	row := LatencyRow{
		Mode: mode, F: f, Ops: ops,
		Seconds:     elapsed.Seconds(),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		AvgMicros:   float64(elapsed.Microseconds()) / float64(ops),
		Percentiles: percentiles(samples),
	}
	if mode == "tentative+pipelined" {
		row.Depth = depth
	}
	return row, nil
}

// LatencyGain is one mode's median-latency improvement over the
// committed baseline at one group size.
type LatencyGain struct {
	F       int     `json:"f"`
	Mode    string  `json:"mode"`
	Speedup float64 `json:"median_speedup"` // committed p50 / mode p50
}

// LatencyGains returns each non-baseline mode's median speedup per
// group size, in row order.
func LatencyGains(rows []LatencyRow) []LatencyGain {
	base := make(map[int]float64)
	for _, r := range rows {
		if r.Mode == "committed" {
			base[r.F] = r.P50
		}
	}
	var out []LatencyGain
	for _, r := range rows {
		if r.Mode == "committed" || base[r.F] <= 0 || r.P50 <= 0 {
			continue
		}
		out = append(out, LatencyGain{F: r.F, Mode: r.Mode, Speedup: base[r.F] / r.P50})
	}
	return out
}

// WriteLatencyTable renders the commit-round comparison with each
// mode's median speedup over the committed baseline.
func WriteLatencyTable(w io.Writer, rows []LatencyRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tn\tdepth\tops\tops/sec\tavg latency\tp50\tp95\tp99")
	for _, r := range rows {
		depth := "-"
		if r.Depth > 0 {
			depth = fmt.Sprintf("%d", r.Depth)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%.0f\t%.0fµs\t%.0fµs\t%.0fµs\t%.0fµs\n",
			r.Mode, 3*r.F+1, depth, r.Ops, r.OpsPerSec, r.AvgMicros, r.P50, r.P95, r.P99)
	}
	tw.Flush()
	for _, g := range LatencyGains(rows) {
		fmt.Fprintf(w, "%s at n=%d: %.1fx lower median Submit latency\n", g.Mode, 3*g.F+1, g.Speedup)
	}
}

// latencyReport is the machine-readable artifact schema.
type latencyReport struct {
	reportMeta
	Gains []LatencyGain `json:"median_speedups"`
	Rows  []LatencyRow  `json:"rows"`
}

// WriteLatencyJSON writes the rows as a machine-readable JSON report.
func WriteLatencyJSON(path string, rows []LatencyRow) error {
	return writeReportJSON(path, "latency", &latencyReport{
		Gains: LatencyGains(rows),
		Rows:  rows,
	})
}
