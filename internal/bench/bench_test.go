package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

func TestCountingSpace(t *testing.T) {
	s := peats.New(policy.AllowAll())
	cs := NewCountingSpace(s.Handle("p"))
	ctx := context.Background()

	if err := cs.Out(ctx, tuple.T(tuple.Str("X"))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.Rdp(ctx, tuple.T(tuple.Any())); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Rd(ctx, tuple.T(tuple.Any())); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.Inp(ctx, tuple.T(tuple.Any())); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.Cas(ctx, tuple.T(tuple.Formal("x")), tuple.T(tuple.Str("Y"))); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.In(ctx, tuple.T(tuple.Any())); err != nil {
		t.Fatal(err)
	}
	outs, reads, cas := cs.Counts()
	if outs != 1 || reads != 4 || cas != 1 {
		t.Errorf("counts = %d/%d/%d, want 1/4/1", outs, reads, cas)
	}
}

func TestRunStrongConsensusMeasures(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	run, err := RunStrongConsensus(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.N != 4 || run.Tuples != 5 {
		t.Errorf("n=%d tuples=%d, want 4/5", run.N, run.Tuples)
	}
	if run.Outs != 4 {
		t.Errorf("outs = %d, want n", run.Outs)
	}
	if run.Cas != 4 {
		t.Errorf("cas = %d, want n", run.Cas)
	}
	if run.Reads < 4 {
		t.Errorf("reads = %d, want ≥ n", run.Reads)
	}
	if run.MeasuredBits == 0 {
		t.Error("no bits measured")
	}
}

func TestTerminationProbes(t *testing.T) {
	if !TerminationProbe(4, 1, 30*time.Second) {
		t.Error("n=3t+1 did not terminate")
	}
	if TerminationProbe(3, 1, 200*time.Millisecond) {
		t.Error("n=3t terminated — Theorem 4 violated")
	}
	if !KValuedProbe(5, 1, 3, 30*time.Second) {
		t.Error("k=3, n=(k+1)t+1 did not terminate")
	}
	if KValuedProbe(4, 1, 3, 200*time.Millisecond) {
		t.Error("k=3, n=(k+1)t terminated — Theorem 3 violated")
	}
}

func TestBitsTable(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rows, err := BitsTable(ctx, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// The headline claim: the ACL-model bit counts dwarf the PEATS
	// formula, and the gap widens with t.
	for _, r := range rows {
		if r.AlonSticky.Int64() <= int64(r.PEATSFormula) && r.T > 1 {
			t.Errorf("t=%d: Alon %v ≤ PEATS %d — comparison shape broken",
				r.T, r.AlonSticky, r.PEATSFormula)
		}
		if r.MeasuredTuples != r.N+1 {
			t.Errorf("t=%d: %d tuples, want n+1", r.T, r.MeasuredTuples)
		}
	}
	var buf bytes.Buffer
	WriteBitsTable(&buf, rows)
	if !strings.Contains(buf.String(), "PEATS bits") {
		t.Error("table rendering broken")
	}
}

func TestOpsTable(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rows, err := OpsTable(ctx, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.PEATSOps == 0 || r.ACLOps == 0 {
		t.Errorf("empty measurements: %+v", r)
	}
	// Shape check: the ACL baseline needs (t+1)(2t+1) processes vs 3t+1.
	if r.ACLProcs <= r.PEATSProcs {
		t.Errorf("ACL procs %d ≤ PEATS procs %d", r.ACLProcs, r.PEATSProcs)
	}
	var buf bytes.Buffer
	WriteOpsTable(&buf, rows)
	if !strings.Contains(buf.String(), "ACL") {
		t.Error("table rendering broken")
	}
}

func TestResilienceAndKValuedTables(t *testing.T) {
	rows := ResilienceTable([]int{1}, 200*time.Millisecond)
	if !rows[0].AtBound || rows[0].BelowBound {
		t.Errorf("resilience row wrong: %+v", rows[0])
	}
	var buf bytes.Buffer
	WriteResilienceTable(&buf, rows)
	if !strings.Contains(buf.String(), "3t+1") {
		t.Error("rendering broken")
	}

	krows := KValuedTable([]int{2}, []int{1}, 200*time.Millisecond)
	if !krows[0].AtBound || krows[0].BelowBound {
		t.Errorf("k-valued row wrong: %+v", krows[0])
	}
	buf.Reset()
	WriteKValuedTable(&buf, krows)
	if !strings.Contains(buf.String(), "(k+1)t+1") {
		t.Error("rendering broken")
	}
}

func TestLatencyTableSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rows, err := LatencyTable(ctx, LatencyConfig{Ops: 8, Depth: 4, Groups: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 (committed, tentative, tentative+pipelined)", len(rows))
	}
	for _, r := range rows {
		if r.P50 <= 0 || r.P95 < r.P50 || r.P99 < r.P95 {
			t.Errorf("%s: percentile shape broken: %+v", r.Mode, r.Percentiles)
		}
	}
	var buf bytes.Buffer
	WriteLatencyTable(&buf, rows)
	if !strings.Contains(buf.String(), "tentative+pipelined") {
		t.Error("table rendering broken")
	}
	path := filepath.Join(t.TempDir(), "BENCH_latency.json")
	if err := WriteLatencyJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Table string        `json:"table"`
		Gains []LatencyGain `json:"median_speedups"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Table != "latency" || len(rep.Gains) != 2 {
		t.Errorf("report header/gains wrong: %+v", rep)
	}
}

func TestAblationTable(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rows, err := AblationTable(ctx, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Baseline <= 0 || r.With <= 0 {
			t.Errorf("%s: empty measurement %+v", r.Name, r)
		}
	}
	var buf bytes.Buffer
	WriteAblationTable(&buf, rows)
	if !strings.Contains(buf.String(), "reference monitor") {
		t.Error("rendering broken")
	}
}
