package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"

	"peats/internal/bft"
	"peats/internal/policy"
	"peats/internal/tuple"
)

// AgreementConfig sizes the agreement-layer comparison. The zero value
// selects defaults sized for a laptop run; CI smoke-tests the path with
// tiny parameters.
type AgreementConfig struct {
	// Writers is the number of concurrent writer clients.
	Writers int
	// OpsPerWriter is how many ordered write operations each writer
	// issues per configuration.
	OpsPerWriter int
	// Reads is how many sequential rdp probes each read mode issues.
	Reads int
	// BatchSize is the batched configuration compared against batch
	// size 1.
	BatchSize int
	// Groups lists the fault bounds f to sweep (n = 3f+1 replicas).
	// Batching amortizes the O(n²) agreement traffic, so its speedup
	// grows with the group — the sweep shows the scaling.
	Groups []int
}

func (c AgreementConfig) withDefaults() AgreementConfig {
	if c.Writers <= 0 {
		c.Writers = 32
	}
	if c.OpsPerWriter <= 0 {
		c.OpsPerWriter = 60
	}
	if c.Reads <= 0 {
		c.Reads = 300
	}
	if c.BatchSize <= 1 {
		c.BatchSize = 64
	}
	if len(c.Groups) == 0 {
		c.Groups = []int{1, 2, 4}
	}
	return c
}

// AgreementRow is one measurement of the agreement-layer comparison on
// the in-process transport: batched vs unbatched ordered writes under
// concurrent clients (per group size), and read-only vs ordered read
// latency.
type AgreementRow struct {
	Workload  string  `json:"workload"` // "write" or "read"
	Mode      string  `json:"mode"`     // "batch=N" / "ordered" / "read-only"
	F         int     `json:"f"`        // fault bound; n = 3f+1 replicas
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	AvgMicros float64 `json:"avg_latency_us"`
	Percentiles
}

// AgreementTable measures the agreement layer: write throughput with
// concurrent clients at batch size 1 vs cfg.BatchSize, and rdp latency
// on the ordered path vs the read-only fast path.
func AgreementTable(ctx context.Context, cfg AgreementConfig) ([]AgreementRow, error) {
	cfg = cfg.withDefaults()
	var rows []AgreementRow

	for _, f := range cfg.Groups {
		for _, batch := range []int{1, cfg.BatchSize} {
			row, err := writeThroughput(ctx, f, batch, cfg.Writers, cfg.OpsPerWriter)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	readRows, err := readLatency(ctx, cfg.BatchSize, cfg.Reads)
	if err != nil {
		return nil, err
	}
	return append(rows, readRows...), nil
}

func agreementCluster(f, batch int) (*bft.Cluster, error) {
	pol := policy.AllowAll()
	services := make([]bft.Service, 3*f+1)
	for i := range services {
		services[i] = bft.NewSpaceService(pol)
	}
	return bft.NewCluster(f, services, bft.WithBatchSize(batch))
}

// writeThroughput measures steady-state wall-clock throughput of
// Writers concurrent clients each issuing OpsPerWriter ordered write
// operations (alternating out and inp so the resident space — and with
// it the checkpoint cost — stays bounded, isolating agreement-layer
// cost). A warm-up wave runs before the timed one so cluster and
// client setup stay out of the measurement.
func writeThroughput(ctx context.Context, f, batch, writers, opsPer int) (AgreementRow, error) {
	cl, err := agreementCluster(f, batch)
	if err != nil {
		return AgreementRow{}, err
	}
	defer cl.Stop()

	spaces := make([]*bft.RemoteSpace, writers)
	for w := range spaces {
		spaces[w] = bft.NewRemoteSpace(cl.Client(fmt.Sprintf("w%d", w)))
	}
	// Per-writer sample slices avoid a contended append; the timed
	// wave merges them for the percentile summary.
	perOp := make([][]time.Duration, writers)
	wave := func(ops int, record bool) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if record {
					perOp[w] = make([]time.Duration, 0, ops)
				}
				entry := tuple.T(tuple.Str("LOAD"), tuple.Int(int64(w)))
				for i := 0; i < ops; i++ {
					opStart := time.Now()
					if i%2 == 0 {
						if err := spaces[w].Out(ctx, entry); err != nil {
							errs <- fmt.Errorf("writer %d out %d: %w", w, i, err)
							return
						}
					} else if _, _, err := spaces[w].Inp(ctx, entry); err != nil {
						errs <- fmt.Errorf("writer %d inp %d: %w", w, i, err)
						return
					}
					if record {
						perOp[w] = append(perOp[w], time.Since(opStart))
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		return elapsed, <-errs
	}

	warm := opsPer / 4
	if warm < 2 {
		warm = 2
	}
	if _, err := wave(warm, false); err != nil {
		return AgreementRow{}, err
	}
	elapsed, err := wave(opsPer, true)
	if err != nil {
		return AgreementRow{}, err
	}

	var samples []time.Duration
	for _, s := range perOp {
		samples = append(samples, s...)
	}
	ops := writers * opsPer
	return AgreementRow{
		Workload:    "write",
		Mode:        fmt.Sprintf("batch=%d", batch),
		F:           f,
		Clients:     writers,
		Ops:         ops,
		Seconds:     elapsed.Seconds(),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		AvgMicros:   float64(elapsed.Microseconds()) / float64(ops) * float64(writers),
		Percentiles: percentiles(samples),
	}, nil
}

// readLatency measures sequential rdp latency over a settled cluster,
// on the ordered path and on the read-only fast path.
func readLatency(ctx context.Context, batch, reads int) ([]AgreementRow, error) {
	cl, err := agreementCluster(1, batch)
	if err != nil {
		return nil, err
	}
	defer cl.Stop()

	writer := bft.NewRemoteSpace(cl.Client("seed"))
	if err := writer.Out(ctx, tuple.T(tuple.Str("NEEDLE"), tuple.Int(1))); err != nil {
		return nil, err
	}
	// Let every replica execute the write so the read-only quorum forms
	// on the first round trip, as in steady state.
	deadline := time.Now().Add(2 * time.Second)
	for _, r := range cl.Replicas {
		for r.Executed() < 1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	tmpl := tuple.T(tuple.Str("NEEDLE"), tuple.Any())
	var rows []AgreementRow
	for _, mode := range []struct {
		name    string
		ordered bool
	}{{"ordered", true}, {"read-only", false}} {
		ts := bft.NewRemoteSpace(cl.Client("reader-" + mode.name))
		ts.OrderedReads = mode.ordered
		samples := make([]time.Duration, 0, reads)
		start := time.Now()
		for i := 0; i < reads; i++ {
			opStart := time.Now()
			if _, ok, err := ts.Rdp(ctx, tmpl); err != nil || !ok {
				return nil, fmt.Errorf("%s rdp %d: found=%v err=%v", mode.name, i, ok, err)
			}
			samples = append(samples, time.Since(opStart))
		}
		elapsed := time.Since(start)
		rows = append(rows, AgreementRow{
			Workload:    "read",
			Mode:        mode.name,
			F:           1,
			Clients:     1,
			Ops:         reads,
			Seconds:     elapsed.Seconds(),
			OpsPerSec:   float64(reads) / elapsed.Seconds(),
			AvgMicros:   float64(elapsed.Microseconds()) / float64(reads),
			Percentiles: percentiles(samples),
		})
	}
	return rows, nil
}

// WriteAgreementTable renders the agreement comparison with the
// batching speedup per group size and the read-path latency ratio.
func WriteAgreementTable(w io.Writer, rows []AgreementRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tmode\tn\tclients\tops\tops/sec\tavg latency\tp50\tp95\tp99")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.0f\t%.0fµs\t%.0fµs\t%.0fµs\t%.0fµs\n",
			r.Workload, r.Mode, 3*r.F+1, r.Clients, r.Ops, r.OpsPerSec, r.AvgMicros,
			r.P50, r.P95, r.P99)
	}
	tw.Flush()
	for _, s := range WriteSpeedups(rows) {
		fmt.Fprintf(w, "batching speedup at n=%d: %.1fx write throughput\n", 3*s.F+1, s.Speedup)
	}
	if r := readOnlyGain(rows); r > 0 {
		fmt.Fprintf(w, "read-only fast path: %.1fx lower read latency\n", r)
	}
}

// WriteSpeedup is batched-over-unbatched write throughput at one group
// size.
type WriteSpeedup struct {
	F       int     `json:"f"`
	Speedup float64 `json:"speedup"`
}

// WriteSpeedups returns the batching speedup per fault bound, in row
// order. Batching amortizes the O(n²) vote traffic of the three-phase
// protocol, so the speedup grows with the replica group.
func WriteSpeedups(rows []AgreementRow) []WriteSpeedup {
	base := make(map[int]float64)
	batched := make(map[int]float64)
	var order []int
	for _, r := range rows {
		if r.Workload != "write" {
			continue
		}
		if _, seen := base[r.F]; !seen {
			if _, seen := batched[r.F]; !seen {
				order = append(order, r.F)
			}
		}
		if r.Mode == "batch=1" {
			base[r.F] = r.OpsPerSec
		} else {
			batched[r.F] = r.OpsPerSec
		}
	}
	var out []WriteSpeedup
	for _, f := range order {
		if base[f] > 0 && batched[f] > 0 {
			out = append(out, WriteSpeedup{F: f, Speedup: batched[f] / base[f]})
		}
	}
	return out
}

// readOnlyGain returns ordered over read-only average read latency.
func readOnlyGain(rows []AgreementRow) float64 {
	var ordered, ro float64
	for _, r := range rows {
		if r.Workload != "read" {
			continue
		}
		if r.Mode == "ordered" {
			ordered = r.AvgMicros
		} else {
			ro = r.AvgMicros
		}
	}
	if ordered == 0 || ro == 0 {
		return 0
	}
	return ordered / ro
}

// agreementReport is the machine-readable artifact schema.
type agreementReport struct {
	reportMeta
	WriteSpeedups   []WriteSpeedup `json:"write_speedups"`
	ReadLatencyGain float64        `json:"read_latency_gain"`
	Rows            []AgreementRow `json:"rows"`
}

// WriteAgreementJSON writes the rows as a machine-readable JSON report.
func WriteAgreementJSON(path string, rows []AgreementRow) error {
	return writeReportJSON(path, "agreement", &agreementReport{
		WriteSpeedups:   WriteSpeedups(rows),
		ReadLatencyGain: readOnlyGain(rows),
		Rows:            rows,
	})
}
