package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"

	"peats/internal/bft"
	"peats/internal/partition"
	ipeats "peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
)

// PartitionsConfig sizes the partitioned-deployment comparison. The
// zero value selects defaults sized for a laptop run; CI smoke-tests
// the path with tiny parameters.
type PartitionsConfig struct {
	// Writers is the number of concurrent writer clients.
	Writers int
	// OpsPerWriter is how many single-partition write operations each
	// writer issues per configuration.
	OpsPerWriter int
	// Groups lists the group counts M to sweep: M groups of 3F+1
	// replicas each, the load spread uniformly. Each group is an
	// independent agreement pipeline, so on a multi-core host the sweep
	// scales with M; on a single core it is flat (the core, not the
	// pipeline, is the ceiling) and the budget rows carry the story.
	Groups []int
	// F is the per-group fault bound of the scaling sweep (default 0:
	// one replica per group, the cheapest pipeline per core).
	F int
	// CrossOps is how many cross-partition two-phase submissions each
	// writer issues in the 2PC cost measurement.
	CrossOps int
	// BudgetF is the fault bound of the single-group same-budget
	// baseline: one group of 3·BudgetF+1 replicas versus 3·BudgetF+1
	// groups of one replica — the same machine count, partitioned.
	BudgetF int
}

func (c PartitionsConfig) withDefaults() PartitionsConfig {
	if c.Writers <= 0 {
		c.Writers = 16
	}
	if c.OpsPerWriter <= 0 {
		c.OpsPerWriter = 150
	}
	if len(c.Groups) == 0 {
		c.Groups = []int{1, 2, 4}
	}
	if c.F < 0 {
		c.F = 0
	}
	if c.CrossOps <= 0 {
		c.CrossOps = 40
	}
	if c.BudgetF <= 0 {
		c.BudgetF = 1
	}
	return c
}

// PartitionsRow is one measurement of the partitioned-deployment
// comparison on the in-process transport.
type PartitionsRow struct {
	Workload  string  `json:"workload"` // "single-partition" / "cross-partition" / "budget-baseline"
	Groups    int     `json:"groups"`
	F         int     `json:"f"`        // per-group fault bound
	Replicas  int     `json:"replicas"` // total replicas across groups
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	AvgMicros float64 `json:"avg_latency_us"`
	Percentiles
}

// partitionedDeployment is an in-process M-group deployment plus one
// routing space handle per writer.
type partitionedDeployment struct {
	clusters []*bft.Cluster
	spaces   []*partition.Space
}

func (d *partitionedDeployment) stop() {
	for _, c := range d.clusters {
		c.Stop()
	}
}

// newPartitionedDeployment starts M groups of 3f+1 replicas each and
// builds writers routing handles.
func newPartitionedDeployment(m, f, writers int) (*partitionedDeployment, error) {
	topo := &partition.Topology{}
	for gi := 0; gi < m; gi++ {
		g := partition.GroupSpec{ID: fmt.Sprintf("g%d", gi), F: f}
		for j := 0; j < 3*f+1; j++ {
			g.Replicas = append(g.Replicas, partition.ReplicaSpec{ID: fmt.Sprintf("r%d", j)})
		}
		topo.Groups = append(topo.Groups, g)
	}
	master := []byte("peats-bench-partitions")
	dir := topo.Directory(master)
	pol := policy.AllowAll()

	d := &partitionedDeployment{}
	for gi := 0; gi < m; gi++ {
		services := make([]bft.Service, 3*f+1)
		for i := range services {
			svc := bft.NewSpaceService(pol)
			svc.EnablePartition(topo.Groups[gi].ID, dir)
			services[i] = svc
		}
		cl, err := bft.NewCluster(f, services,
			bft.WithGroupIdentity(topo.Groups[gi].ID, master))
		if err != nil {
			d.stop()
			return nil, err
		}
		d.clusters = append(d.clusters, cl)
	}
	for w := 0; w < writers; w++ {
		groups := make([]partition.Group, m)
		for gi := 0; gi < m; gi++ {
			groups[gi] = partition.Group{
				ID:     topo.Groups[gi].ID,
				Client: d.clusters[gi].Client(fmt.Sprintf("w%d", w)),
			}
		}
		sp, err := partition.NewSpace(groups)
		if err != nil {
			d.stop()
			return nil, err
		}
		d.spaces = append(d.spaces, sp)
	}
	return d, nil
}

// keyForGroup returns a first-field key whose arity-2 tuples the
// routing rule assigns to the wanted group.
func keyForGroup(m, want int) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("key%d", i)
		if space.RouteEntry(tuple.T(tuple.Str(k), tuple.Int(0)), m) == want {
			return k
		}
	}
}

// partitionThroughput measures aggregate single-partition write
// throughput: writers spread uniformly over the groups, each issuing
// alternating out/inp on its home key — every submission routes direct
// to its owning group, so M groups order the load on M independent
// pipelines.
func partitionThroughput(ctx context.Context, m, f, writers, opsPer int) (PartitionsRow, error) {
	d, err := newPartitionedDeployment(m, f, writers)
	if err != nil {
		return PartitionsRow{}, err
	}
	defer d.stop()

	keys := make([]string, writers)
	for w := range keys {
		keys[w] = keyForGroup(m, w%m)
	}
	perOp := make([][]time.Duration, writers)
	wave := func(ops int, record bool) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if record {
					perOp[w] = make([]time.Duration, 0, ops)
				}
				entry := tuple.T(tuple.Str(keys[w]), tuple.Int(int64(w)))
				for i := 0; i < ops; i++ {
					opStart := time.Now()
					if i%2 == 0 {
						if err := d.spaces[w].Out(ctx, entry); err != nil {
							errs <- fmt.Errorf("writer %d out %d: %w", w, i, err)
							return
						}
					} else if _, _, err := d.spaces[w].Inp(ctx, entry); err != nil {
						errs <- fmt.Errorf("writer %d inp %d: %w", w, i, err)
						return
					}
					if record {
						perOp[w] = append(perOp[w], time.Since(opStart))
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		return elapsed, <-errs
	}

	warm := opsPer / 4
	if warm < 2 {
		warm = 2
	}
	if _, err := wave(warm, false); err != nil {
		return PartitionsRow{}, err
	}
	elapsed, err := wave(opsPer, true)
	if err != nil {
		return PartitionsRow{}, err
	}

	var samples []time.Duration
	for _, s := range perOp {
		samples = append(samples, s...)
	}
	ops := writers * opsPer
	return PartitionsRow{
		Workload:    "single-partition",
		Groups:      m,
		F:           f,
		Replicas:    m * (3*f + 1),
		Clients:     writers,
		Ops:         ops,
		Seconds:     elapsed.Seconds(),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		AvgMicros:   float64(elapsed.Microseconds()) / float64(ops) * float64(writers),
		Percentiles: percentiles(samples),
	}, nil
}

// crossThroughput measures the two-phase-commit path: every submission
// pairs an out in one group with an out in another, costing a prepare
// and a decision round at each participant.
func crossThroughput(ctx context.Context, m, f, writers, opsPer int) (PartitionsRow, error) {
	d, err := newPartitionedDeployment(m, f, writers)
	if err != nil {
		return PartitionsRow{}, err
	}
	defer d.stop()

	keyA, keyB := keyForGroup(m, 0), keyForGroup(m, 1%m)
	perOp := make([][]time.Duration, writers)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			perOp[w] = make([]time.Duration, 0, opsPer)
			ea := tuple.T(tuple.Str(keyA), tuple.Int(int64(w)))
			eb := tuple.T(tuple.Str(keyB), tuple.Int(int64(w)))
			for i := 0; i < opsPer; i++ {
				opStart := time.Now()
				if _, err := d.spaces[w].Submit(ctx,
					ipeats.OutOp(ea), ipeats.OutOp(eb)); err != nil {
					errs <- fmt.Errorf("writer %d cross %d: %w", w, i, err)
					return
				}
				perOp[w] = append(perOp[w], time.Since(opStart))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return PartitionsRow{}, err
	}

	var samples []time.Duration
	for _, s := range perOp {
		samples = append(samples, s...)
	}
	ops := writers * opsPer
	return PartitionsRow{
		Workload:    "cross-partition",
		Groups:      m,
		F:           f,
		Replicas:    m * (3*f + 1),
		Clients:     writers,
		Ops:         ops,
		Seconds:     elapsed.Seconds(),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		AvgMicros:   float64(elapsed.Microseconds()) / float64(ops) * float64(writers),
		Percentiles: percentiles(samples),
	}, nil
}

// budgetBaseline measures the same write workload on one replicated
// group of 3f+1 replicas — the same machine budget as 3f+1 groups of
// one, un-partitioned.
func budgetBaseline(ctx context.Context, f, writers, opsPer int) (PartitionsRow, error) {
	row, err := writeThroughput(ctx, f, 64, writers, opsPer)
	if err != nil {
		return PartitionsRow{}, err
	}
	return PartitionsRow{
		Workload:    "budget-baseline",
		Groups:      1,
		F:           f,
		Replicas:    3*f + 1,
		Clients:     row.Clients,
		Ops:         row.Ops,
		Seconds:     row.Seconds,
		OpsPerSec:   row.OpsPerSec,
		AvgMicros:   row.AvgMicros,
		Percentiles: row.Percentiles,
	}, nil
}

// PartitionsTable measures the partitioned deployment: aggregate
// single-partition write throughput per group count, the 2PC cost of
// cross-partition submissions, and the past-the-ceiling comparison
// against one BFT group of 3·BudgetF+1 replicas — by two groups using
// a fraction of its replica budget, and by 3·BudgetF+1 groups using
// exactly its replica budget.
func PartitionsTable(ctx context.Context, cfg PartitionsConfig) ([]PartitionsRow, error) {
	cfg = cfg.withDefaults()
	var rows []PartitionsRow
	for _, m := range cfg.Groups {
		row, err := partitionThroughput(ctx, m, cfg.F, cfg.Writers, cfg.OpsPerWriter)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, m := range cfg.Groups {
		if m < 2 {
			continue
		}
		row, err := crossThroughput(ctx, m, cfg.F, cfg.Writers, cfg.CrossOps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	budget, err := budgetBaseline(ctx, cfg.BudgetF, cfg.Writers, cfg.OpsPerWriter)
	if err != nil {
		return nil, err
	}
	twoGroups, err := partitionThroughput(ctx, 2, 0, cfg.Writers, cfg.OpsPerWriter)
	if err != nil {
		return nil, err
	}
	twoGroups.Workload = "two-groups"
	budgetPart, err := partitionThroughput(ctx, 3*cfg.BudgetF+1, 0, cfg.Writers, cfg.OpsPerWriter)
	if err != nil {
		return nil, err
	}
	budgetPart.Workload = "budget-partitioned"
	return append(rows, budget, twoGroups, budgetPart), nil
}

// PartitionSpeedup is aggregate single-partition write throughput at M
// groups over the M=1 baseline.
type PartitionSpeedup struct {
	Groups  int     `json:"groups"`
	Speedup float64 `json:"speedup"`
}

// PartitionSpeedups returns the single-partition scaling per group
// count, in row order.
func PartitionSpeedups(rows []PartitionsRow) []PartitionSpeedup {
	var base float64
	for _, r := range rows {
		if r.Workload == "single-partition" && r.Groups == 1 {
			base = r.OpsPerSec
			break
		}
	}
	if base == 0 {
		return nil
	}
	var out []PartitionSpeedup
	for _, r := range rows {
		if r.Workload == "single-partition" && r.Groups > 1 {
			out = append(out, PartitionSpeedup{Groups: r.Groups, Speedup: r.OpsPerSec / base})
		}
	}
	return out
}

// budgetGain returns partitioned-over-replicated throughput at the same
// total replica count, or 0 when either row is missing.
func budgetGain(rows []PartitionsRow) float64 {
	var repl, part float64
	for _, r := range rows {
		switch r.Workload {
		case "budget-baseline":
			repl = r.OpsPerSec
		case "budget-partitioned":
			part = r.OpsPerSec
		}
	}
	if repl == 0 || part == 0 {
		return 0
	}
	return part / repl
}

// twoGroupGain returns two-partitioned-groups throughput over the
// single replicated BFT group — the minimal past-the-ceiling claim,
// achieved on a fraction of the baseline's replica budget.
func twoGroupGain(rows []PartitionsRow) float64 {
	var repl, two float64
	for _, r := range rows {
		switch r.Workload {
		case "budget-baseline":
			repl = r.OpsPerSec
		case "two-groups":
			two = r.OpsPerSec
		}
	}
	if repl == 0 || two == 0 {
		return 0
	}
	return two / repl
}

// WritePartitionsTable renders the partitioned-deployment comparison.
func WritePartitionsTable(w io.Writer, rows []PartitionsRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tgroups\tf\treplicas\tclients\tops\tops/sec\tavg latency\tp50\tp95\tp99")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.0fµs\t%.0fµs\t%.0fµs\t%.0fµs\n",
			r.Workload, r.Groups, r.F, r.Replicas, r.Clients, r.Ops, r.OpsPerSec,
			r.AvgMicros, r.P50, r.P95, r.P99)
	}
	tw.Flush()
	for _, s := range PartitionSpeedups(rows) {
		fmt.Fprintf(w, "partition scaling at %d groups: %.1fx single-partition write throughput\n",
			s.Groups, s.Speedup)
	}
	if g := twoGroupGain(rows); g > 0 {
		fmt.Fprintf(w, "two groups vs one replicated BFT group: %.1fx aggregate writes\n", g)
	}
	if g := budgetGain(rows); g > 0 {
		fmt.Fprintf(w, "same replica budget, partitioned vs replicated: %.1fx\n", g)
	}
}

// partitionsReport is the machine-readable artifact schema.
type partitionsReport struct {
	reportMeta
	Speedups     []PartitionSpeedup `json:"partition_speedups"`
	TwoGroupGain float64            `json:"two_group_gain"`
	BudgetGain   float64            `json:"same_budget_gain"`
	Rows         []PartitionsRow    `json:"rows"`
}

// WritePartitionsJSON writes the rows as a machine-readable JSON report.
func WritePartitionsJSON(path string, rows []PartitionsRow) error {
	return writeReportJSON(path, "partitions", &partitionsReport{
		Speedups:     PartitionSpeedups(rows),
		TwoGroupGain: twoGroupGain(rows),
		BudgetGain:   budgetGain(rows),
		Rows:         rows,
	})
}
