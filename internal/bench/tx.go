package bench

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"peats/internal/bft"
	"peats/internal/peats"
	"peats/internal/tuple"
)

// TxConfig sizes the transaction-amortisation comparison: one client
// performing k-operation units either as k sequential round trips or as
// one atomic Submit transaction. The zero value selects laptop-sized
// defaults; CI smoke-tests the path with tiny parameters.
type TxConfig struct {
	// K is the number of operations per unit.
	K int
	// Rounds is how many units each mode executes (alternating out and
	// inp rounds, so the resident space stays bounded).
	Rounds int
	// Groups lists the fault bounds f to sweep (n = 3f+1 replicas). The
	// protocol cost a transaction amortises grows with the group, so the
	// speedup does too.
	Groups []int
}

func (c TxConfig) withDefaults() TxConfig {
	if c.K <= 1 {
		c.K = 8
	}
	if c.Rounds <= 0 {
		c.Rounds = 16
	}
	if c.Rounds%2 != 0 {
		c.Rounds++ // pair out/inp rounds so the space drains
	}
	if len(c.Groups) == 0 {
		c.Groups = []int{1, 2}
	}
	return c
}

// TxRow is one measurement: K ops per unit, via sequential round trips
// or one transaction.
type TxRow struct {
	Mode      string  `json:"mode"` // "sequential" or "tx"
	F         int     `json:"f"`    // fault bound; n = 3f+1 replicas
	K         int     `json:"k"`
	Units     int     `json:"units"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	UnitUs    float64 `json:"avg_unit_latency_us"`
	// Percentiles summarize per-unit latency.
	Percentiles
}

// TxTable measures k sequential round trips against one k-op Submit
// transaction per unit, per group size.
func TxTable(ctx context.Context, cfg TxConfig) ([]TxRow, error) {
	cfg = cfg.withDefaults()
	var rows []TxRow
	for _, f := range cfg.Groups {
		for _, mode := range []string{"sequential", "tx"} {
			row, err := txThroughput(ctx, f, cfg.K, cfg.Rounds, mode)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// txUnitOps builds the ops of one unit: even rounds write K distinct
// tuples, odd rounds consume exactly those K (by exact template, so a
// tx unit never aborts), keeping the resident set bounded.
func txUnitOps(round, k int) []peats.Op {
	ops := make([]peats.Op, k)
	for i := range ops {
		entry := tuple.T(tuple.Str("TXB"), tuple.Int(int64(i)))
		if round%2 == 0 {
			ops[i] = peats.OutOp(entry)
		} else {
			ops[i] = peats.InpOp(entry)
		}
	}
	return ops
}

func txThroughput(ctx context.Context, f, k, rounds int, mode string) (TxRow, error) {
	cl, err := agreementCluster(f, 1)
	if err != nil {
		return TxRow{}, err
	}
	defer cl.Stop()
	ts := bft.NewRemoteSpace(cl.Client("txc"))

	runUnit := func(round int) error {
		ops := txUnitOps(round, k)
		if mode == "tx" {
			_, err := ts.Submit(ctx, ops...)
			return err
		}
		for i, op := range ops {
			if _, err := ts.Submit(ctx, op); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		}
		return nil
	}
	// Warm-up pair of rounds keeps setup out of the measurement.
	for r := 0; r < 2; r++ {
		if err := runUnit(r); err != nil {
			return TxRow{}, fmt.Errorf("tx bench warmup (%s, f=%d): %w", mode, f, err)
		}
	}
	samples := make([]time.Duration, 0, rounds)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		unitStart := time.Now()
		if err := runUnit(r); err != nil {
			return TxRow{}, fmt.Errorf("tx bench (%s, f=%d, round %d): %w", mode, f, r, err)
		}
		samples = append(samples, time.Since(unitStart))
	}
	elapsed := time.Since(start)
	ops := rounds * k
	return TxRow{
		Mode: mode, F: f, K: k, Units: rounds, Ops: ops,
		Seconds:     elapsed.Seconds(),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		UnitUs:      float64(elapsed.Microseconds()) / float64(rounds),
		Percentiles: percentiles(samples),
	}, nil
}

// TxSpeedup is tx-over-sequential unit throughput at one group size.
type TxSpeedup struct {
	F       int     `json:"f"`
	Speedup float64 `json:"speedup"`
}

// TxSpeedups returns the per-group speedup of the transaction mode, in
// row order.
func TxSpeedups(rows []TxRow) []TxSpeedup {
	seq := make(map[int]float64)
	tx := make(map[int]float64)
	var order []int
	for _, r := range rows {
		if _, a := seq[r.F]; !a {
			if _, b := tx[r.F]; !b {
				order = append(order, r.F)
			}
		}
		if r.Mode == "tx" {
			tx[r.F] = r.OpsPerSec
		} else {
			seq[r.F] = r.OpsPerSec
		}
	}
	var out []TxSpeedup
	for _, f := range order {
		if seq[f] > 0 && tx[f] > 0 {
			out = append(out, TxSpeedup{F: f, Speedup: tx[f] / seq[f]})
		}
	}
	return out
}

// WriteTxTable renders the comparison with the per-group speedup.
func WriteTxTable(w io.Writer, rows []TxRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tn\tk\tunits\tops\tops/sec\tavg unit latency\tp50\tp95\tp99")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.0f\t%.0fµs\t%.0fµs\t%.0fµs\t%.0fµs\n",
			r.Mode, 3*r.F+1, r.K, r.Units, r.Ops, r.OpsPerSec, r.UnitUs,
			r.P50, r.P95, r.P99)
	}
	tw.Flush()
	for _, s := range TxSpeedups(rows) {
		fmt.Fprintf(w, "tx amortisation at n=%d: %.1fx over sequential round trips\n",
			3*s.F+1, s.Speedup)
	}
}

// txReport is the machine-readable artifact schema.
type txReport struct {
	reportMeta
	Speedups []TxSpeedup `json:"tx_speedups"`
	Rows     []TxRow     `json:"rows"`
}

// WriteTxJSON writes the rows as a machine-readable JSON report.
func WriteTxJSON(path string, rows []TxRow) error {
	return writeReportJSON(path, "tx", &txReport{
		Speedups: TxSpeedups(rows),
		Rows:     rows,
	})
}
