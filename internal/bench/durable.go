package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"peats/internal/durable"
	"peats/internal/space"
	"peats/internal/tuple"
)

// DurableConfig sizes the durability experiments.
type DurableConfig struct {
	// Ops is the number of committed units per throughput measurement
	// (default 2000).
	Ops int
	// WALLens are the WAL lengths (committed units) the recovery-time
	// sweep reopens (default 1000, 5000, 20000).
	WALLens []int
	// Dir is the scratch directory (a fresh temp dir when empty).
	Dir string
}

func (c DurableConfig) withDefaults() DurableConfig {
	if c.Ops <= 0 {
		c.Ops = 2000
	}
	if len(c.WALLens) == 0 {
		c.WALLens = []int{1000, 5000, 20000}
	}
	return c
}

// DurableRow is one line of the durability table.
type DurableRow struct {
	Workload  string  `json:"workload"` // "commit" or "recovery"
	Mode      string  `json:"mode"`     // fsync policy, or "wal=N"
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	AvgMicros float64 `json:"avg_latency_us"`
}

// DurableTable measures the durability engine:
//
//   - commit throughput per fsync policy — fsync-per-op (always) vs
//     group commit (interval) vs none, each unit one insert+remove pair
//     through a durable space, which is what an agreement batch costs
//     at the store layer;
//   - recovery time as a function of WAL length — Open replaying N
//     units with no snapshot to shortcut them.
func DurableTable(cfg DurableConfig) ([]DurableRow, error) {
	cfg = cfg.withDefaults()
	scratch := cfg.Dir
	if scratch == "" {
		dir, err := os.MkdirTemp("", "peats-durable-bench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		scratch = dir
	}

	var rows []DurableRow
	for _, sync := range durable.SyncPolicies() {
		elapsed, err := runDurableCommits(filepath.Join(scratch, "commit-"+string(sync)), sync, cfg.Ops)
		if err != nil {
			return nil, fmt.Errorf("durable commit %s: %w", sync, err)
		}
		rows = append(rows, DurableRow{
			Workload: "commit", Mode: string(sync), Ops: cfg.Ops,
			Seconds:   elapsed.Seconds(),
			OpsPerSec: float64(cfg.Ops) / elapsed.Seconds(),
			AvgMicros: elapsed.Seconds() / float64(cfg.Ops) * 1e6,
		})
	}
	for _, n := range cfg.WALLens {
		dir := filepath.Join(scratch, fmt.Sprintf("recover-%d", n))
		if _, err := runDurableCommits(dir, durable.SyncNever, n); err != nil {
			return nil, fmt.Errorf("durable recovery prep %d: %w", n, err)
		}
		start := time.Now()
		db, err := durable.Open(durable.Options{Dir: dir, Sync: durable.SyncNever, AutoCompactBytes: -1})
		if err != nil {
			return nil, fmt.Errorf("durable recovery %d: %w", n, err)
		}
		elapsed := time.Since(start)
		db.Close()
		rows = append(rows, DurableRow{
			Workload: "recovery", Mode: fmt.Sprintf("wal=%d", n), Ops: n,
			Seconds:   elapsed.Seconds(),
			OpsPerSec: float64(n) / elapsed.Seconds(),
			AvgMicros: elapsed.Seconds() / float64(n) * 1e6,
		})
	}
	return rows, nil
}

// runDurableCommits drives ops committed units (one insert plus one
// removal each, framed BeginUnit/CommitUnit like an agreement batch)
// through a durable space and reports the elapsed wall time. The DB is
// closed without compaction, so the directory's WAL holds all units —
// which is exactly what the recovery sweep wants to replay.
func runDurableCommits(dir string, sync durable.SyncPolicy, ops int) (time.Duration, error) {
	db, err := durable.Open(durable.Options{Dir: dir, Sync: sync, AutoCompactBytes: -1})
	if err != nil {
		return 0, err
	}
	sp, err := space.NewShardedFactory(1, func(int) (space.Store, error) { return db.NewStore(), nil })
	if err != nil {
		db.Close()
		return 0, err
	}
	start := time.Now()
	for i := 1; i <= ops; i++ {
		db.BeginUnit(uint64(i))
		if err := sp.Out(tuple.T(tuple.Str("bench"), tuple.Int(int64(i)))); err != nil {
			db.Close()
			return 0, err
		}
		if i > 1 {
			sp.Inp(tuple.T(tuple.Str("bench"), tuple.Int(int64(i-1))))
		}
		db.CommitUnit(nil)
	}
	if err := db.Flush(); err != nil {
		db.Close()
		return 0, err
	}
	elapsed := time.Since(start)
	return elapsed, db.Close()
}

// WriteDurableTable renders the durability table.
func WriteDurableTable(w io.Writer, rows []DurableRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tmode\tops\tseconds\tops/sec\tavg µs")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.3f\t%.0f\t%.1f\n",
			r.Workload, r.Mode, r.Ops, r.Seconds, r.OpsPerSec, r.AvgMicros)
	}
	tw.Flush()
}

// GroupCommitSpeedup is the headline number: group-commit (interval)
// unit throughput over fsync-per-op (always).
func GroupCommitSpeedup(rows []DurableRow) float64 {
	var always, interval float64
	for _, r := range rows {
		if r.Workload != "commit" {
			continue
		}
		switch r.Mode {
		case string(durable.SyncAlways):
			always = r.OpsPerSec
		case string(durable.SyncInterval):
			interval = r.OpsPerSec
		}
	}
	if always == 0 {
		return 0
	}
	return interval / always
}

type durableReport struct {
	reportMeta
	GroupCommitSpeedup float64      `json:"group_commit_speedup"`
	Rows               []DurableRow `json:"rows"`
}

// WriteDurableJSON writes the rows as a machine-readable JSON report.
func WriteDurableJSON(path string, rows []DurableRow) error {
	return writeReportJSON(path, "durable", &durableReport{
		GroupCommitSpeedup: GroupCommitSpeedup(rows),
		Rows:               rows,
	})
}
