package bench

import (
	"encoding/json"
	"math"
	"os"
	"sort"
	"time"
)

// reportMeta is the header every machine-readable report shares. Table
// report structs embed it (encoding/json flattens embedded structs, so
// the artifact schema is unchanged) and writeReportJSON stamps it.
type reportMeta struct {
	Table       string `json:"table"`
	GeneratedAt string `json:"generated_at"`
}

func (m *reportMeta) setMeta(table, at string) {
	m.Table = table
	m.GeneratedAt = at
}

// metaSetter is implemented by every report struct via the embedded
// reportMeta.
type metaSetter interface{ setMeta(table, at string) }

// writeReportJSON stamps rep's meta header and writes it to path as
// indented JSON — the one JSON writer every bench table shares.
func writeReportJSON(path, table string, rep metaSetter) error {
	rep.setMeta(table, time.Now().UTC().Format(time.RFC3339))
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Percentiles are the latency quantiles a latency distribution reports,
// in microseconds.
type Percentiles struct {
	P50 float64 `json:"p50_latency_us"`
	P95 float64 `json:"p95_latency_us"`
	P99 float64 `json:"p99_latency_us"`
}

// percentiles summarizes per-op latency samples. samples is consumed
// (sorted in place).
func percentiles(samples []time.Duration) Percentiles {
	if len(samples) == 0 {
		return Percentiles{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(p float64) float64 {
		idx := int(math.Ceil(p/100*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return float64(samples[idx].Nanoseconds()) / 1e3
	}
	return Percentiles{P50: at(50), P95: at(95), P99: at(99)}
}
