// Package bench is the experiment harness: it regenerates the paper's
// evaluation artifacts (the memory and operation-count comparisons of
// §5.2/§7 and the resilience bounds of §5.2-§5.4) on the running
// implementation, printing one table per experiment. cmd/peats-bench is
// its CLI; bench_test.go at the repository root exposes the same
// workloads as testing.B benchmarks.
package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"peats/internal/consensus"
	"peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/tuple"
)

// CountingSpace wraps a TupleSpace and counts the shared-memory
// operations issued through it, for the E8 operation-count experiment.
type CountingSpace struct {
	inner peats.TupleSpace
	outs  atomic.Int64
	reads atomic.Int64 // rd+rdp+in+inp
	cas   atomic.Int64
}

var _ peats.TupleSpace = (*CountingSpace)(nil)

// NewCountingSpace wraps inner.
func NewCountingSpace(inner peats.TupleSpace) *CountingSpace {
	return &CountingSpace{inner: inner}
}

// Counts returns (outs, reads, cas) issued so far.
func (c *CountingSpace) Counts() (outs, reads, cas int64) {
	return c.outs.Load(), c.reads.Load(), c.cas.Load()
}

// Submit implements peats.TupleSpace, counting each submitted op under
// its legacy bucket.
func (c *CountingSpace) Submit(ctx context.Context, ops ...peats.Op) ([]peats.Result, error) {
	for _, op := range ops {
		switch op.Code {
		case policy.OpOut:
			c.outs.Add(1)
		case policy.OpCas:
			c.cas.Add(1)
		default:
			c.reads.Add(1)
		}
	}
	return c.inner.Submit(ctx, ops...)
}

// Out implements peats.TupleSpace.
func (c *CountingSpace) Out(ctx context.Context, e tuple.Tuple) error {
	c.outs.Add(1)
	return c.inner.Out(ctx, e)
}

// Rd implements peats.TupleSpace.
func (c *CountingSpace) Rd(ctx context.Context, t tuple.Tuple) (tuple.Tuple, error) {
	c.reads.Add(1)
	return c.inner.Rd(ctx, t)
}

// Rdp implements peats.TupleSpace.
func (c *CountingSpace) Rdp(ctx context.Context, t tuple.Tuple) (tuple.Tuple, bool, error) {
	c.reads.Add(1)
	return c.inner.Rdp(ctx, t)
}

// In implements peats.TupleSpace.
func (c *CountingSpace) In(ctx context.Context, t tuple.Tuple) (tuple.Tuple, error) {
	c.reads.Add(1)
	return c.inner.In(ctx, t)
}

// Inp implements peats.TupleSpace.
func (c *CountingSpace) Inp(ctx context.Context, t tuple.Tuple) (tuple.Tuple, bool, error) {
	c.reads.Add(1)
	return c.inner.Inp(ctx, t)
}

// Cas implements peats.TupleSpace.
func (c *CountingSpace) Cas(ctx context.Context, tmpl, e tuple.Tuple) (bool, tuple.Tuple, error) {
	c.cas.Add(1)
	return c.inner.Cas(ctx, tmpl, e)
}

// RdAll implements peats.TupleSpace.
func (c *CountingSpace) RdAll(ctx context.Context, t tuple.Tuple) ([]tuple.Tuple, error) {
	c.reads.Add(1)
	return c.inner.RdAll(ctx, t)
}

// StrongRun is the outcome of one fault-free strong binary consensus
// execution at n = 3t+1.
type StrongRun struct {
	N, T         int
	MeasuredBits int   // bits stored in the space afterwards
	Tuples       int   // tuples stored (n PROPOSE + 1 DECISION)
	Outs         int64 // total out operations across processes
	Reads        int64 // total read operations
	Cas          int64 // total cas operations
	Elapsed      time.Duration
}

// RunStrongConsensus executes strong binary consensus with n = 3t+1
// processes all proposing (fault-free), returning measured memory and
// operation counts. Proposals split between 0 and 1 to exercise the
// collection loop.
func RunStrongConsensus(ctx context.Context, t int) (StrongRun, error) {
	n := 3*t + 1
	procs := make([]policy.ProcessID, n)
	for i := range procs {
		procs[i] = policy.ProcessID(fmt.Sprintf("p%d", i))
	}
	domain := []int64{0, 1}
	s := peats.New(consensus.StrongPolicy(procs, t, domain))

	counter := struct {
		outs, reads, cas atomic.Int64
	}{}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs := NewCountingSpace(s.Handle(procs[i]))
			c, err := consensus.NewStrong(cs, consensus.StrongConfig{
				Self: procs[i], Procs: procs, T: t, Domain: domain,
				PollInterval: 50 * time.Microsecond,
			})
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := c.Propose(ctx, int64(i%2)); err != nil {
				errs[i] = err
				return
			}
			o, r, ca := cs.Counts()
			counter.outs.Add(o)
			counter.reads.Add(r)
			counter.cas.Add(ca)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return StrongRun{}, err
		}
	}
	return StrongRun{
		N: n, T: t,
		MeasuredBits: s.Inner().BitSize(),
		Tuples:       s.Inner().Len(),
		Outs:         counter.outs.Load(),
		Reads:        counter.reads.Load(),
		Cas:          counter.cas.Load(),
		Elapsed:      time.Since(start),
	}, nil
}

// TerminationProbe runs strong binary consensus with the given n and t
// (bypassing the constructor's bound check) where only correct = n − t
// processes propose, splitting proposals as adversarially as possible.
// It reports whether all participants decided within the timeout —
// true at n ≥ 3t+1, false at n = 3t (Theorem 4's stalling execution).
func TerminationProbe(n, t int, timeout time.Duration) bool {
	procs := make([]policy.ProcessID, n)
	for i := range procs {
		procs[i] = policy.ProcessID(fmt.Sprintf("p%d", i))
	}
	domain := []int64{0, 1}
	s := peats.New(consensus.StrongPolicy(procs, t, domain))
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	correct := n - t
	var wg sync.WaitGroup
	failed := atomic.Bool{}
	for i := 0; i < correct; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := consensus.NewStrongUnchecked(s.Handle(procs[i]), consensus.StrongConfig{
				Self: procs[i], Procs: procs, T: t, Domain: domain,
				PollInterval: 50 * time.Microsecond,
			})
			// Alternate 0/1 so no value reaches t+1 at n = 3t with the
			// t silent processes withheld.
			if _, err := c.Propose(ctx, int64(i%2)); err != nil {
				failed.Store(true)
			}
		}(i)
	}
	wg.Wait()
	return !failed.Load()
}

// KValuedProbe is TerminationProbe for the k-valued object (§5.3): the
// n−t correct processes spread proposals over all k values as evenly as
// possible.
func KValuedProbe(n, t, k int, timeout time.Duration) bool {
	procs := make([]policy.ProcessID, n)
	for i := range procs {
		procs[i] = policy.ProcessID(fmt.Sprintf("p%d", i))
	}
	domain := make([]int64, k)
	for i := range domain {
		domain[i] = int64(i)
	}
	s := peats.New(consensus.StrongPolicy(procs, t, domain))
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	correct := n - t
	var wg sync.WaitGroup
	failed := atomic.Bool{}
	for i := 0; i < correct; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := consensus.NewStrongUnchecked(s.Handle(procs[i]), consensus.StrongConfig{
				Self: procs[i], Procs: procs, T: t, Domain: domain,
				PollInterval: 50 * time.Microsecond,
			})
			if _, err := c.Propose(ctx, int64(i%k)); err != nil {
				failed.Store(true)
			}
		}(i)
	}
	wg.Wait()
	return !failed.Load()
}
