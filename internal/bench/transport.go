// Transport bench: the connection-scale TCP wire layer in isolation.
//
// Two experiments over a real loopback TCP pair with HMAC-sealed
// frames:
//
//   - throughput: many concurrent senders funnel small frames into one
//     peer lane, once with coalescing disabled (the old
//     one-write(2)-per-frame behaviour) and once with the coalescing
//     writer — the frames-per-write column is the measured batching
//     ratio, and the speedup is the headline win.
//   - vote latency: sequential request/echo round-trips (the shape of a
//     PREPARE/COMMIT exchange) while a continuous multi-MB state-pack
//     stream shares the link. On the bulk lane the packs are chunked
//     and preempted, so vote p99 stays near the no-bulk baseline; the
//     bulk-as-protocol mode ships the same packs as single frames in
//     the vote lane — the head-of-line blocking the lanes exist to
//     prevent.
package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"peats/internal/auth"
	"peats/internal/transport"
)

// voteBytes is the payload size of one simulated vote frame.
const voteBytes = 32

// TransportConfig sizes the wire-layer comparison. The zero value
// selects laptop-sized defaults; CI smoke-tests the path with tiny
// parameters.
type TransportConfig struct {
	// Senders is the number of goroutines sending concurrently in the
	// throughput experiment.
	Senders int
	// Frames is the number of frames each sender sends.
	Frames int
	// FrameBytes is the payload size of each throughput frame (default
	// 64, the scale of a protocol vote — the dominant traffic class).
	FrameBytes int
	// Votes is the number of sequential round-trips measured per
	// latency mode.
	Votes int
	// BulkBytes is the size of each concurrent state pack.
	BulkBytes int
	// BulkMBps throttles the concurrent state-pack stream, the way a
	// real recovering replica paces its fetches. The interesting
	// question is what a pack does to votes *in flight with it* — not
	// what happens when an unthrottled stream saturates the CPU with
	// MAC work, which no lane design can hide.
	BulkMBps int
}

func (c TransportConfig) withDefaults() TransportConfig {
	if c.Senders <= 0 {
		c.Senders = 4
	}
	if c.Frames <= 0 {
		c.Frames = 20000
	}
	if c.FrameBytes <= 0 {
		c.FrameBytes = 64
	}
	if c.Votes <= 0 {
		c.Votes = 1500
	}
	if c.BulkBytes <= 0 {
		c.BulkBytes = 4 << 20
	}
	if c.BulkMBps <= 0 {
		c.BulkMBps = 32
	}
	return c
}

// TransportRow is one measurement. Throughput rows carry the frame
// counters; vote rows carry the latency distribution. Both record the
// process goroutine count and the sender's live connection count, the
// footprint the async writer model is supposed to keep at O(peers).
type TransportRow struct {
	Section    string  `json:"section"` // "throughput" | "vote_latency"
	Mode       string  `json:"mode"`
	Senders    int     `json:"senders,omitempty"`
	Frames     int     `json:"frames,omitempty"` // total frames offered
	FrameBytes int     `json:"frame_bytes,omitempty"`
	Votes      int     `json:"votes,omitempty"`
	BulkBytes  int     `json:"bulk_bytes,omitempty"`
	Seconds    float64 `json:"seconds"`
	// Delivered is the number of frames that actually arrived —
	// drop-oldest on the protocol lane sheds load the writer cannot
	// clear, so offered and delivered may differ.
	Delivered      int     `json:"delivered,omitempty"`
	FramesPerSec   float64 `json:"frames_per_sec,omitempty"`
	FramesPerWrite float64 `json:"frames_per_write,omitempty"`
	Goroutines     int     `json:"goroutines"`
	Conns          int     `json:"conns"`
	Percentiles
}

// newTransportPair builds an a→b loopback TCP pair, a using cfg.
func newTransportPair(cfg transport.TCPConfig) (send, recv *transport.TCP, err error) {
	ids := []string{"a", "b"}
	master := []byte("bench-transport-master")
	recv, err = transport.NewTCP("b", "127.0.0.1:0", nil, auth.NewKeyringFromMaster(master, "b", ids))
	if err != nil {
		return nil, nil, err
	}
	send, err = transport.NewTCPWithConfig("a", "127.0.0.1:0",
		map[string]string{"b": recv.Addr()},
		auth.NewKeyringFromMaster(master, "a", ids), cfg)
	if err != nil {
		recv.Close()
		return nil, nil, err
	}
	recv.SetPeerAddr("a", send.Addr())
	return send, recv, nil
}

// TransportTable runs both experiments and returns the rows in order:
// throughput per-frame, throughput coalesced, then the three vote
// modes.
func TransportTable(ctx context.Context, cfg TransportConfig) ([]TransportRow, error) {
	cfg = cfg.withDefaults()
	// The latency modes measure the wire layer, not the collector: each
	// state pack leaves an MB-scale buffer to collect, and on a tiny
	// live heap GOGC=100 would run a cycle every few packs whose assist
	// bursts (~1ms on a single-proc box) dominate the vote tail. Rare,
	// not absent: the run still pays its allocations, just at a
	// production-plausible cadence.
	restore := debug.SetGCPercent(1000)
	defer debug.SetGCPercent(restore)
	var rows []TransportRow
	for _, mode := range []string{"per-frame", "coalesced"} {
		// Two passes per mode, best kept: a single ~100ms pass on a
		// shared box is noise-dominated, and the fastest pass is the one
		// closest to what the path actually costs.
		var best TransportRow
		for pass := 0; pass < 2; pass++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			row, err := throughputRun(cfg, mode)
			if err != nil {
				return nil, fmt.Errorf("transport bench (%s): %w", mode, err)
			}
			if row.FramesPerSec > best.FramesPerSec {
				best = row
			}
		}
		rows = append(rows, best)
	}
	for _, mode := range []string{"no-bulk", "bulk-lane", "bulk-as-protocol"} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row, err := voteLatencyRun(ctx, cfg, mode)
		if err != nil {
			return nil, fmt.Errorf("transport bench (%s): %w", mode, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// throughputRun floods one peer lane from cfg.Senders goroutines and
// measures delivered frames per second.
func throughputRun(cfg TransportConfig, mode string) (TransportRow, error) {
	send, recv, err := newTransportPair(transport.TCPConfig{NoCoalesce: mode == "per-frame"})
	if err != nil {
		return TransportRow{}, err
	}
	defer send.Close()
	defer recv.Close()

	total := cfg.Senders * cfg.Frames
	var delivered atomic.Int64
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case <-recv.Inbox():
				delivered.Add(1)
			case <-done:
				return
			}
		}
	}()

	payload := make([]byte, cfg.FrameBytes)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < cfg.Senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.Frames; i++ {
				// The request lane rejects the newest frame when full, so
				// a short pause and retry turns queue admission into flow
				// control: every offered frame is eventually delivered and
				// the run measures sustained goodput, not shed load.
				for {
					err := send.SendClass("b", payload, transport.ClassRequest)
					if err == nil {
						break
					}
					if !errors.Is(err, transport.ErrBackpressure) {
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()

	// Wait until every offered frame has been delivered.
	deadline := time.Now().Add(60 * time.Second)
	for delivered.Load() < int64(total) {
		if time.Now().After(deadline) {
			return TransportRow{}, fmt.Errorf("drain stalled: %d/%d", delivered.Load(), total)
		}
		time.Sleep(200 * time.Microsecond)
	}
	elapsed := time.Since(start)

	st := send.Stats()
	row := TransportRow{
		Section: "throughput", Mode: mode,
		Senders: cfg.Senders, Frames: total, FrameBytes: cfg.FrameBytes,
		Seconds:      elapsed.Seconds(),
		Delivered:    int(delivered.Load()),
		FramesPerSec: float64(delivered.Load()) / elapsed.Seconds(),
		Goroutines:   runtime.NumGoroutine(),
		Conns:        st.Conns,
	}
	if st.Writes > 0 {
		row.FramesPerWrite = float64(st.FramesSent) / float64(st.Writes)
	}
	return row, nil
}

// voteLatencyRun measures sequential vote round-trips, optionally under
// a concurrent stream of BulkBytes state packs on the named lane.
func voteLatencyRun(ctx context.Context, cfg TransportConfig, mode string) (TransportRow, error) {
	// Small bulk chunks keep each uninterruptible seal/verify burst well
	// under a vote round-trip, so a vote that collides with a chunk in
	// flight waits microseconds, not milliseconds. The deeper bulk lane
	// keeps whole-pack admission possible at that chunk size (a 4 MiB
	// pack is 512 chunks).
	send, recv, err := newTransportPair(transport.TCPConfig{BulkChunk: 8 << 10, BulkDepth: 1024})
	if err != nil {
		return TransportRow{}, err
	}
	defer send.Close()
	defer recv.Close()

	done := make(chan struct{})
	defer close(done)

	// Echo server: votes bounce straight back; bulk packs are consumed
	// and counted, so a misconfigured stream (every pack rejected at
	// admission) fails the run instead of silently measuring no-bulk.
	var bulkPacks atomic.Int64
	go func() {
		for {
			select {
			case m := <-recv.Inbox():
				if len(m.Payload) == voteBytes {
					_ = recv.Send("a", m.Payload)
				} else if len(m.Payload) == cfg.BulkBytes {
					bulkPacks.Add(1)
				}
			case <-done:
				return
			}
		}
	}()

	if mode != "no-bulk" {
		class := transport.ClassBulk
		if mode == "bulk-as-protocol" {
			class = transport.ClassProtocol
		}
		// One pack every BulkBytes/BulkMBps: a continuous, throttled
		// state-transfer stream overlapping the whole vote run.
		interval := time.Duration(float64(cfg.BulkBytes) / float64(cfg.BulkMBps<<20) * float64(time.Second))
		go func() {
			pack := make([]byte, cfg.BulkBytes)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				if err := send.SendClass("b", pack, class); err != nil && !errors.Is(err, transport.ErrBackpressure) {
					return
				}
				select {
				case <-tick.C:
				case <-done:
					return
				}
			}
		}()
		// Let the bulk stream reach steady state before measuring.
		time.Sleep(50 * time.Millisecond)
	}

	// Votes are paced, not back-to-back: each one samples the link at a
	// random phase of the bulk stream, the way protocol traffic actually
	// arrives. Unpaced votes would finish between two packs and measure
	// nothing.
	const voteGap = 500 * time.Microsecond
	samples := make([]time.Duration, 0, cfg.Votes)
	start := time.Now()
	for i := 0; i < cfg.Votes; i++ {
		if err := ctx.Err(); err != nil {
			return TransportRow{}, err
		}
		vote := make([]byte, voteBytes)
		t0 := time.Now()
		if err := send.Send("b", vote); err != nil && !errors.Is(err, transport.ErrBackpressure) {
			return TransportRow{}, err
		}
		select {
		case <-send.Inbox():
			samples = append(samples, time.Since(t0))
		case <-time.After(30 * time.Second):
			return TransportRow{}, fmt.Errorf("vote %d echo timed out", i)
		}
		time.Sleep(voteGap)
	}
	elapsed := time.Since(start)

	row := TransportRow{
		Section: "vote_latency", Mode: mode,
		Votes:       cfg.Votes,
		Seconds:     elapsed.Seconds(),
		Goroutines:  runtime.NumGoroutine(),
		Conns:       send.Stats().Conns,
		Percentiles: percentiles(samples),
	}
	if mode != "no-bulk" {
		row.BulkBytes = cfg.BulkBytes
		if bulkPacks.Load() == 0 {
			return TransportRow{}, fmt.Errorf("%s: no state pack was delivered during the vote run", mode)
		}
	}
	return row, nil
}

// TransportGains are the two headline numbers: the coalescing speedup
// and each bulk mode's p99 inflation over the quiet baseline.
type TransportGains struct {
	// CoalescedSpeedup is coalesced frames/sec over per-frame
	// frames/sec (the acceptance bar is ≥ 2).
	CoalescedSpeedup float64 `json:"coalesced_speedup"`
	// BulkLaneP99Ratio is vote p99 with a chunked bulk stream on the
	// bulk lane over the no-bulk p99 (the bar is ~2).
	BulkLaneP99Ratio float64 `json:"bulk_lane_p99_ratio"`
	// BulkAsProtocolP99Ratio is the same ratio when the packs ride the
	// protocol lane — the head-of-line damage lanes prevent.
	BulkAsProtocolP99Ratio float64 `json:"bulk_as_protocol_p99_ratio"`
}

// TransportGainsFrom derives the headline ratios from the table rows.
func TransportGainsFrom(rows []TransportRow) TransportGains {
	var g TransportGains
	var perFrame, coalesced, baseP99 float64
	for _, r := range rows {
		switch {
		case r.Section == "throughput" && r.Mode == "per-frame":
			perFrame = r.FramesPerSec
		case r.Section == "throughput" && r.Mode == "coalesced":
			coalesced = r.FramesPerSec
		case r.Section == "vote_latency" && r.Mode == "no-bulk":
			baseP99 = r.P99
		}
	}
	if perFrame > 0 {
		g.CoalescedSpeedup = coalesced / perFrame
	}
	for _, r := range rows {
		if r.Section != "vote_latency" || baseP99 <= 0 {
			continue
		}
		switch r.Mode {
		case "bulk-lane":
			g.BulkLaneP99Ratio = r.P99 / baseP99
		case "bulk-as-protocol":
			g.BulkAsProtocolP99Ratio = r.P99 / baseP99
		}
	}
	return g
}

// WriteTransportTable renders both experiments with the headline
// ratios.
func WriteTransportTable(w io.Writer, rows []TransportRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "section\tmode\tsenders\tframes\tdelivered\tframes/sec\tframes/write\tp50\tp95\tp99\tgoroutines\tconns")
	for _, r := range rows {
		if r.Section == "throughput" {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.0f\t%.1f\t-\t-\t-\t%d\t%d\n",
				r.Section, r.Mode, r.Senders, r.Frames, r.Delivered, r.FramesPerSec, r.FramesPerWrite, r.Goroutines, r.Conns)
		} else {
			fmt.Fprintf(tw, "%s\t%s\t-\t%d\t-\t-\t-\t%.0fµs\t%.0fµs\t%.0fµs\t%d\t%d\n",
				r.Section, r.Mode, r.Votes, r.P50, r.P95, r.P99, r.Goroutines, r.Conns)
		}
	}
	tw.Flush()
	g := TransportGainsFrom(rows)
	fmt.Fprintf(w, "coalescing: %.1fx frame throughput over per-frame writes\n", g.CoalescedSpeedup)
	fmt.Fprintf(w, "vote p99 under bulk: %.1fx baseline on the bulk lane, %.1fx if bulk rode the protocol lane\n",
		g.BulkLaneP99Ratio, g.BulkAsProtocolP99Ratio)
}

// transportReport is the machine-readable artifact schema.
type transportReport struct {
	reportMeta
	Gains TransportGains `json:"gains"`
	Rows  []TransportRow `json:"rows"`
}

// WriteTransportJSON writes the rows as a machine-readable JSON report.
func WriteTransportJSON(path string, rows []TransportRow) error {
	return writeReportJSON(path, "transport", &transportReport{
		Gains: TransportGainsFrom(rows),
		Rows:  rows,
	})
}
