package bench

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"text/tabwriter"
	"time"

	"peats/internal/acl"
)

// BitsRow is one line of the E1 memory-comparison table (§5.2,
// footnotes 3-4): the paper's closed-form bit counts next to the bits
// actually stored by this implementation after a fault-free run.
type BitsRow struct {
	T              int
	N              int      // 3t+1
	PEATSFormula   int      // n(log n+1) + (1+(t+1)log n)
	PEATSMeasured  int      // bits stored in our space (string ids, so larger)
	MMRTSticky     int      // 2t+1 sticky bits, at n = (t+1)(2t+1) processes
	MMRTProcesses  int      //
	AlonSticky     *big.Int // (n+1)·C(2t+1, t) sticky bits at n = 3t+1
	MeasuredTuples int
}

// BitsTable computes the E1 rows for the given fault bounds. Measured
// values come from real executions; ctx bounds the total run time.
func BitsTable(ctx context.Context, ts []int) ([]BitsRow, error) {
	rows := make([]BitsRow, 0, len(ts))
	for _, t := range ts {
		n := 3*t + 1
		run, err := RunStrongConsensus(ctx, t)
		if err != nil {
			return nil, fmt.Errorf("bits table t=%d: %w", t, err)
		}
		rows = append(rows, BitsRow{
			T:              t,
			N:              n,
			PEATSFormula:   acl.PEATSBits(n, t),
			PEATSMeasured:  run.MeasuredBits,
			MMRTSticky:     acl.MMRTStickyBits(t),
			MMRTProcesses:  acl.MMRTProcesses(t),
			AlonSticky:     acl.AlonStickyBits(n, t),
			MeasuredTuples: run.Tuples,
		})
	}
	return rows, nil
}

// WriteBitsTable renders the E1 table.
func WriteBitsTable(w io.Writer, rows []BitsRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "t\tn\tPEATS bits (paper)\tPEATS tuples (measured)\tPEATS bits (measured)\tAlon et al. sticky bits (n=3t+1)\tMMRT sticky bits\tMMRT processes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%v\t%d\t%d\n",
			r.T, r.N, r.PEATSFormula, r.MeasuredTuples, r.PEATSMeasured,
			r.AlonSticky, r.MMRTSticky, r.MMRTProcesses)
	}
	tw.Flush()
}

// OpsRow is one line of the E8 operation-count table: shared-memory
// operations to solve strong binary consensus, PEATS vs the sticky-bit
// baseline, measured on fault-free executions.
type OpsRow struct {
	T            int
	PEATSProcs   int
	PEATSOps     int64 // out + reads + cas, total across processes
	PEATSPerProc float64
	ACLProcs     int
	ACLOps       int64
	ACLPerProc   float64
}

// OpsTable measures the E8 rows.
func OpsTable(ctx context.Context, ts []int) ([]OpsRow, error) {
	rows := make([]OpsRow, 0, len(ts))
	for _, t := range ts {
		run, err := RunStrongConsensus(ctx, t)
		if err != nil {
			return nil, fmt.Errorf("ops table t=%d: %w", t, err)
		}
		peatsOps := run.Outs + run.Reads + run.Cas

		aclOps, aclProcs, err := runGroupedBaseline(ctx, t)
		if err != nil {
			return nil, fmt.Errorf("ops table t=%d baseline: %w", t, err)
		}
		rows = append(rows, OpsRow{
			T:            t,
			PEATSProcs:   run.N,
			PEATSOps:     peatsOps,
			PEATSPerProc: float64(peatsOps) / float64(run.N),
			ACLProcs:     aclProcs,
			ACLOps:       aclOps,
			ACLPerProc:   float64(aclOps) / float64(aclProcs),
		})
	}
	return rows, nil
}

func runGroupedBaseline(ctx context.Context, t int) (ops int64, procs int, err error) {
	c := acl.NewGroupedConsensus(t, 50*time.Microsecond)
	n := len(c.Procs())
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := c.Propose(ctx, i, int64(i%2))
			errCh <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if e := <-errCh; e != nil {
			return 0, 0, e
		}
	}
	return c.TotalOps(), n, nil
}

// WriteOpsTable renders the E8 table.
func WriteOpsTable(w io.Writer, rows []OpsRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "t\tPEATS n\tPEATS ops\tPEATS ops/proc\tACL n\tACL sticky ops\tACL ops/proc")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%d\t%d\t%.1f\n",
			r.T, r.PEATSProcs, r.PEATSOps, r.PEATSPerProc,
			r.ACLProcs, r.ACLOps, r.ACLPerProc)
	}
	tw.Flush()
}

// ResilienceRow is one line of the E2 table: strong binary consensus
// terminates at n = 3t+1 and stalls at n = 3t.
type ResilienceRow struct {
	T            int
	AtBound      bool // terminated with n = 3t+1
	BelowBound   bool // terminated with n = 3t (must be false)
	ProbeTimeout time.Duration
}

// ResilienceTable probes the E2 rows. probeTimeout bounds how long a
// below-bound run may stall before it is declared non-terminating.
func ResilienceTable(ts []int, probeTimeout time.Duration) []ResilienceRow {
	rows := make([]ResilienceRow, 0, len(ts))
	for _, t := range ts {
		rows = append(rows, ResilienceRow{
			T:            t,
			AtBound:      TerminationProbe(3*t+1, t, 30*time.Second),
			BelowBound:   TerminationProbe(3*t, t, probeTimeout),
			ProbeTimeout: probeTimeout,
		})
	}
	return rows
}

// WriteResilienceTable renders the E2 table.
func WriteResilienceTable(w io.Writer, rows []ResilienceRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "t\tn=3t+1 terminates\tn=3t terminates (within probe)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%v\t%v\n", r.T, r.AtBound, r.BelowBound)
	}
	tw.Flush()
}

// KValuedRow is one line of the E3 table: the k-valued bound
// n = (k+1)t+1 of Theorems 3-4.
type KValuedRow struct {
	K, T       int
	AtBound    bool // n = (k+1)t+1 terminates
	BelowBound bool // n = (k+1)t stalls
}

// KValuedTable probes the E3 rows.
func KValuedTable(ks, ts []int, probeTimeout time.Duration) []KValuedRow {
	var rows []KValuedRow
	for _, k := range ks {
		for _, t := range ts {
			rows = append(rows, KValuedRow{
				K: k, T: t,
				AtBound:    KValuedProbe((k+1)*t+1, t, k, 30*time.Second),
				BelowBound: KValuedProbe((k+1)*t, t, k, probeTimeout),
			})
		}
	}
	return rows
}

// WriteKValuedTable renders the E3 table.
func WriteKValuedTable(w io.Writer, rows []KValuedRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "k\tt\tn=(k+1)t+1 terminates\tn=(k+1)t terminates (within probe)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%v\t%v\n", r.K, r.T, r.AtBound, r.BelowBound)
	}
	tw.Flush()
}
