// Package peats implements the Policy-Enforced Augmented Tuple Space:
// an augmented tuple space whose operations are vetted by a reference
// monitor evaluating a fine-grained access policy (paper §3-§4).
//
// A PEATS is shared by processes that may be Byzantine. Each process
// accesses the space through a Handle bound to its authenticated
// identity; the monitor sees that identity, the operation and its
// arguments, and the current space state, and allows or denies the
// invocation. Denied invocations return ErrDenied without touching the
// space.
//
// The package also defines TupleSpace, the interface implemented by the
// local PEATS handle and by the replicated BFT client, so the paper's
// consensus algorithms and universal constructions run unchanged over
// either realisation.
package peats

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
)

// ErrDenied is returned when the reference monitor rejects an
// invocation under the space's access policy.
var ErrDenied = errors.New("peats: invocation denied by access policy")

// TupleSpace is the augmented-tuple-space interface used by all
// algorithms in this repository. Implementations are bound to an
// authenticated process identity.
//
// Cas is the conditional atomic swap: atomically, if no tuple matches
// tmpl, insert entry and return inserted=true; otherwise return
// inserted=false and the first matching tuple.
type TupleSpace interface {
	Out(ctx context.Context, entry tuple.Tuple) error
	Rd(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error)
	Rdp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error)
	In(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error)
	Inp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error)
	Cas(ctx context.Context, tmpl, entry tuple.Tuple) (bool, tuple.Tuple, error)
	// RdAll is the bulk non-destructive read (copy-collect), an
	// extension of the DepSpace line beyond the paper's operations.
	RdAll(ctx context.Context, tmpl tuple.Tuple) ([]tuple.Tuple, error)
}

// Stats counts monitor decisions, for the policy-overhead experiments.
type Stats struct {
	Allowed int64
	Denied  int64
}

// Space is a PEATS: a linearizable augmented tuple space protected by an
// access policy.
type Space struct {
	inner   *space.Space
	pol     policy.Policy
	allowed atomic.Int64
	denied  atomic.Int64
}

// New returns a PEATS with the given access policy over a fresh space
// backed by the default store engine.
func New(pol policy.Policy) *Space {
	return &Space{inner: space.New(), pol: pol}
}

// NewWithEngine returns a PEATS whose space is backed by the named
// store engine (see space.Engine).
func NewWithEngine(pol policy.Policy, e space.Engine) (*Space, error) {
	return NewSharded(pol, e, 1)
}

// NewSharded returns a PEATS whose space is partitioned into shards
// (see space.NewSharded): operations routed to different shards, and
// read-only operations anywhere, run concurrently, while observable
// behaviour stays identical to a single-shard space.
func NewSharded(pol policy.Policy, e space.Engine, shards int) (*Space, error) {
	inner, err := space.NewSharded(e, shards)
	if err != nil {
		return nil, err
	}
	return &Space{inner: inner, pol: pol}, nil
}

// Wrap returns a PEATS protecting an existing space. It is used by the
// replication substrate, which owns the space for checkpointing.
func Wrap(inner *space.Space, pol policy.Policy) *Space {
	return &Space{inner: inner, pol: pol}
}

// Handle returns the view of the space bound to process id. All
// invocations through the handle are checked against the policy with
// that identity.
func (s *Space) Handle(id policy.ProcessID) *Handle {
	return &Handle{space: s, id: id}
}

// Policy returns the access policy protecting the space.
func (s *Space) Policy() policy.Policy { return s.pol }

// Inner exposes the underlying space for state inspection (snapshots,
// bit accounting). Mutations must go through handles.
func (s *Space) Inner() *space.Space { return s.inner }

// Stats returns a snapshot of the monitor's decision counters.
func (s *Space) Stats() Stats {
	return Stats{Allowed: s.allowed.Load(), Denied: s.denied.Load()}
}

// evaluate runs the reference monitor for one invocation against the
// given state view and updates the decision counters.
func (s *Space) evaluate(inv policy.Invocation, st policy.StateView) error {
	d := s.pol.Evaluate(inv, st)
	if !d.Allowed {
		s.denied.Add(1)
		return fmt.Errorf("%w: %s", ErrDenied, inv)
	}
	s.allowed.Add(1)
	return nil
}

// Handle is a process-bound view of a PEATS. It implements TupleSpace.
type Handle struct {
	space *Space
	id    policy.ProcessID
}

var _ TupleSpace = (*Handle)(nil)

// ID returns the process identity the handle is bound to.
func (h *Handle) ID() policy.ProcessID { return h.id }

// Out inserts entry if the policy allows it. The monitor check and the
// insertion happen in one atomic section, mirroring the sequential
// execution of the replicated realisation. Only the entry's shard is
// write-locked; the monitor reads the rest of the space under shared
// locks.
func (h *Handle) Out(_ context.Context, entry tuple.Tuple) error {
	inv := policy.Invocation{Invoker: h.id, Op: policy.OpOut, Entry: entry}
	var ws space.ShardSet
	ws.Add(h.space.inner.EntryShard(entry))
	var err error
	h.space.inner.DoScoped(ws, func(tx *space.Tx) {
		if err = h.space.evaluate(inv, tx); err != nil {
			return
		}
		err = tx.Out(entry)
	})
	return err
}

// Rdp performs a non-blocking read if the policy allows it. The whole
// section runs under shared locks, concurrently with other readers.
func (h *Handle) Rdp(_ context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	inv := policy.Invocation{Invoker: h.id, Op: policy.OpRdp, Template: tmpl}
	var (
		t   tuple.Tuple
		ok  bool
		err error
	)
	h.space.inner.DoRead(func(tx *space.Tx) {
		if err = h.space.evaluate(inv, tx); err != nil {
			return
		}
		t, ok = tx.Rdp(tmpl)
	})
	return t, ok, err
}

// Inp performs a non-blocking destructive read if the policy allows it.
func (h *Handle) Inp(_ context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	inv := policy.Invocation{Invoker: h.id, Op: policy.OpInp, Template: tmpl}
	var ws space.ShardSet
	if idx, keyed := h.space.inner.TemplateShard(tmpl); keyed {
		ws.Add(idx)
	} else {
		ws.AddAll()
	}
	var (
		t   tuple.Tuple
		ok  bool
		err error
	)
	h.space.inner.DoScoped(ws, func(tx *space.Tx) {
		if err = h.space.evaluate(inv, tx); err != nil {
			return
		}
		t, ok = tx.Inp(tmpl)
	})
	return t, ok, err
}

// Rd performs a blocking read if the policy allows it. The permission
// check precedes the wait; the paper's rd rules are unconditional, so
// the split is harmless.
func (h *Handle) Rd(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	inv := policy.Invocation{Invoker: h.id, Op: policy.OpRd, Template: tmpl}
	var err error
	h.space.inner.DoRead(func(tx *space.Tx) { err = h.space.evaluate(inv, tx) })
	if err != nil {
		return tuple.Tuple{}, err
	}
	return h.space.inner.Rd(ctx, tmpl)
}

// In performs a blocking destructive read if the policy allows it.
func (h *Handle) In(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	inv := policy.Invocation{Invoker: h.id, Op: policy.OpIn, Template: tmpl}
	var err error
	h.space.inner.DoRead(func(tx *space.Tx) { err = h.space.evaluate(inv, tx) })
	if err != nil {
		return tuple.Tuple{}, err
	}
	return h.space.inner.In(ctx, tmpl)
}

// RdAll performs the bulk non-destructive read if the policy allows it.
// Like Rdp it runs entirely under shared locks.
func (h *Handle) RdAll(_ context.Context, tmpl tuple.Tuple) ([]tuple.Tuple, error) {
	inv := policy.Invocation{Invoker: h.id, Op: policy.OpRdAll, Template: tmpl}
	var (
		out []tuple.Tuple
		err error
	)
	h.space.inner.DoRead(func(tx *space.Tx) {
		if err = h.space.evaluate(inv, tx); err != nil {
			return
		}
		out = tx.RdAll(tmpl)
	})
	return out, err
}

// Cas performs the conditional atomic swap if the policy allows it.
// The monitor evaluation and the swap form a single atomic step.
func (h *Handle) Cas(_ context.Context, tmpl, entry tuple.Tuple) (bool, tuple.Tuple, error) {
	inv := policy.Invocation{Invoker: h.id, Op: policy.OpCas, Template: tmpl, Entry: entry}
	var ws space.ShardSet
	ws.Add(h.space.inner.EntryShard(entry))
	var (
		inserted bool
		matched  tuple.Tuple
		err      error
	)
	h.space.inner.DoScoped(ws, func(tx *space.Tx) {
		if err = h.space.evaluate(inv, tx); err != nil {
			return
		}
		inserted, matched, err = tx.Cas(tmpl, entry)
	})
	return inserted, matched, err
}

// PollRd emulates a blocking rd over a space that only offers rdp (the
// replicated client), by polling with the given interval. It is exported
// for algorithm implementations that must work over both realisations.
func PollRd(ctx context.Context, ts TupleSpace, tmpl tuple.Tuple, interval time.Duration) (tuple.Tuple, error) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		t, ok, err := ts.Rdp(ctx, tmpl)
		if err != nil {
			return tuple.Tuple{}, err
		}
		if ok {
			return t, nil
		}
		select {
		case <-ctx.Done():
			return tuple.Tuple{}, ctx.Err()
		case <-ticker.C:
		}
	}
}
