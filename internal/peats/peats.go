// Package peats implements the Policy-Enforced Augmented Tuple Space:
// an augmented tuple space whose operations are vetted by a reference
// monitor evaluating a fine-grained access policy (paper §3-§4).
//
// A PEATS is shared by processes that may be Byzantine. Each process
// accesses the space through a Handle bound to its authenticated
// identity; the monitor sees that identity, the operation and its
// arguments, and the current space state, and allows or denies the
// invocation. Denied invocations return ErrDenied without touching the
// space.
//
// The package also defines TupleSpace, the interface implemented by the
// local PEATS handle and by the replicated BFT client, so the paper's
// consensus algorithms and universal constructions run unchanged over
// either realisation.
//
// # Operations as values
//
// Every non-blocking operation exists as a first-class Op value
// (OutOp, RdpOp, InpOp, CasOp, RdAllOp). Submit executes a list of such
// values as one atomic, monitor-vetted unit: inside a single critical
// section, each op is vetted by the reference monitor against the state
// the preceding ops produced and then executed against it. A submission
// aborts — leaving the space untouched — when the monitor denies an op,
// an op is malformed, or a destructive read (InpOp) finds no match; the
// last case is what makes multi-key test-and-set and atomic
// move-between-queues patterns work, and it surfaces as ErrAborted.
// The legacy single-operation methods are thin wrappers over one-op
// submissions.
package peats

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
)

// ErrDenied is returned when the reference monitor rejects an
// invocation under the space's access policy.
var ErrDenied = errors.New("peats: invocation denied by access policy")

// ErrAborted is returned when a multi-operation submission aborts
// because a destructive read found no match: none of the submission's
// operations take effect. The returned error wraps ErrAborted and names
// the failing operation; the result prefix up to and including it is
// still returned for inspection.
var ErrAborted = errors.New("peats: transaction aborted")

// DeniedError carries the reference monitor's denial detail. It
// satisfies errors.Is(err, ErrDenied) and is produced identically by
// the local and the replicated realisation, so callers can rely on the
// detail surviving the wire.
type DeniedError struct {
	// Detail renders the denied invocation (invoker, operation,
	// arguments, transaction position).
	Detail string
}

// Error formats the denial exactly as the historical wrapped error did.
func (e *DeniedError) Error() string { return ErrDenied.Error() + ": " + e.Detail }

// Is reports that the error is an ErrDenied.
func (e *DeniedError) Is(target error) bool { return target == ErrDenied }

// Op is one tuple-space operation as a first-class value, built with
// OutOp, RdpOp, InpOp, CasOp or RdAllOp and executed — alone or as part
// of an atomic multi-operation unit — with TupleSpace.Submit. The zero
// Op is invalid.
type Op struct {
	// Code is the operation (only the non-blocking operations and cas
	// can be submitted; blocking rd/in are realised by polling).
	Code policy.Op
	// Template is the template argument of rdp/inp/cas/rdAll.
	Template tuple.Tuple
	// Entry is the entry argument of out and cas.
	Entry tuple.Tuple
}

// OutOp stages the insertion of entry.
func OutOp(entry tuple.Tuple) Op { return Op{Code: policy.OpOut, Entry: entry} }

// RdpOp stages a non-destructive non-blocking read.
func RdpOp(tmpl tuple.Tuple) Op { return Op{Code: policy.OpRdp, Template: tmpl} }

// InpOp stages a destructive non-blocking read. Inside a multi-op
// submission, a miss aborts the whole unit (ErrAborted).
func InpOp(tmpl tuple.Tuple) Op { return Op{Code: policy.OpInp, Template: tmpl} }

// CasOp stages the conditional atomic swap cas(tmpl, entry).
func CasOp(tmpl, entry tuple.Tuple) Op {
	return Op{Code: policy.OpCas, Template: tmpl, Entry: entry}
}

// RdAllOp stages the bulk non-destructive read.
func RdAllOp(tmpl tuple.Tuple) Op { return Op{Code: policy.OpRdAll, Template: tmpl} }

// ReadOnly reports whether the op cannot mutate the space — a
// submission of only read-only ops is eligible for the replicated
// read-only fast path.
func (op Op) ReadOnly() bool {
	return op.Code == policy.OpRdp || op.Code == policy.OpRdAll
}

// Result is the outcome of one submitted operation.
type Result struct {
	// Found reports a match for rdp/inp (and a non-empty rdAll).
	Found bool
	// Inserted reports that cas inserted its entry.
	Inserted bool
	// Tuple is the matched tuple of rdp/inp and of a cas that did not
	// insert.
	Tuple tuple.Tuple
	// Tuples is the rdAll match list.
	Tuples []tuple.Tuple
	// Bindings maps the formal fields of the op's template to the
	// values they matched in Tuple.
	Bindings tuple.Bindings
}

// NewResult assembles a Result, deriving the formal-field bindings of
// the op's template from the matched tuple. Both realisations build
// their results through it so bindings behave identically.
func NewResult(op Op, found, inserted bool, t tuple.Tuple, all []tuple.Tuple) Result {
	r := Result{Found: found, Inserted: inserted, Tuple: t, Tuples: all}
	matched := found || (op.Code == policy.OpCas && !inserted)
	if matched && !t.IsZero() {
		r.Bindings, _ = tuple.Match(t, op.Template)
	}
	return r
}

// TupleSpace is the augmented-tuple-space interface used by all
// algorithms in this repository. Implementations are bound to an
// authenticated process identity.
//
// Cas is the conditional atomic swap: atomically, if no tuple matches
// tmpl, insert entry and return inserted=true; otherwise return
// inserted=false and the first matching tuple.
//
// Submit executes a list of operation values as one atomic,
// monitor-vetted unit and returns one Result per op; see the package
// comment for the abort semantics. The single-operation methods are
// wrappers over one-op submissions.
type TupleSpace interface {
	Submit(ctx context.Context, ops ...Op) ([]Result, error)
	Out(ctx context.Context, entry tuple.Tuple) error
	Rd(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error)
	Rdp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error)
	In(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error)
	Inp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error)
	Cas(ctx context.Context, tmpl, entry tuple.Tuple) (bool, tuple.Tuple, error)
	// RdAll is the bulk non-destructive read (copy-collect), an
	// extension of the DepSpace line beyond the paper's operations.
	RdAll(ctx context.Context, tmpl tuple.Tuple) ([]tuple.Tuple, error)
}

// Stats counts monitor decisions, for the policy-overhead experiments.
type Stats struct {
	Allowed int64
	Denied  int64
}

// Space is a PEATS: a linearizable augmented tuple space protected by an
// access policy.
type Space struct {
	inner   *space.Space
	pol     policy.Policy
	allowed atomic.Int64
	denied  atomic.Int64
	closer  func() error // durability release hook, see AttachCloser
	framer  Framer       // WAL transaction framing hook, see AttachFramer
}

// Framer frames one local multi-op transaction as a single atomic WAL
// unit. The durability engine implements it (durable.DB); in-memory
// spaces leave it unset.
type Framer interface {
	BeginLocalUnit()
	CommitLocalUnit()
}

// AttachCloser registers the release hook Close invokes — a space built
// over a data directory attaches the durability engine's
// flush-and-close here.
func (s *Space) AttachCloser(fn func() error) { s.closer = fn }

// AttachFramer registers the WAL framing hook: every mutating multi-op
// Submit then journals as one unit — one group-commit fsync window —
// instead of one journal record per op.
func (s *Space) AttachFramer(f Framer) { s.framer = f }

// Close releases resources behind the space. For in-memory spaces it
// is a no-op; for durable spaces it flushes and closes the write-ahead
// log, after which the space must not be used.
func (s *Space) Close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer()
}

// New returns a PEATS with the given access policy over a fresh space
// backed by the default store engine.
func New(pol policy.Policy) *Space {
	return &Space{inner: space.New(), pol: pol}
}

// NewWithEngine returns a PEATS whose space is backed by the named
// store engine (see space.Engine).
func NewWithEngine(pol policy.Policy, e space.Engine) (*Space, error) {
	return NewSharded(pol, e, 1)
}

// NewSharded returns a PEATS whose space is partitioned into shards
// (see space.NewSharded): operations routed to different shards, and
// read-only operations anywhere, run concurrently, while observable
// behaviour stays identical to a single-shard space.
func NewSharded(pol policy.Policy, e space.Engine, shards int) (*Space, error) {
	inner, err := space.NewSharded(e, shards)
	if err != nil {
		return nil, err
	}
	return &Space{inner: inner, pol: pol}, nil
}

// Wrap returns a PEATS protecting an existing space. It is used by the
// replication substrate, which owns the space for checkpointing.
func Wrap(inner *space.Space, pol policy.Policy) *Space {
	return &Space{inner: inner, pol: pol}
}

// Handle returns the view of the space bound to process id. All
// invocations through the handle are checked against the policy with
// that identity.
func (s *Space) Handle(id policy.ProcessID) *Handle {
	return &Handle{space: s, id: id}
}

// Policy returns the access policy protecting the space.
func (s *Space) Policy() policy.Policy { return s.pol }

// Inner exposes the underlying space for state inspection (snapshots,
// bit accounting). Mutations must go through handles.
func (s *Space) Inner() *space.Space { return s.inner }

// Stats returns a snapshot of the monitor's decision counters.
func (s *Space) Stats() Stats {
	return Stats{Allowed: s.allowed.Load(), Denied: s.denied.Load()}
}

// evaluate runs the reference monitor for one invocation against the
// given state view and updates the decision counters.
func (s *Space) evaluate(inv policy.Invocation, st policy.StateView) error {
	d := s.pol.Evaluate(inv, st)
	if !d.Allowed {
		s.denied.Add(1)
		return &DeniedError{Detail: inv.String()}
	}
	s.allowed.Add(1)
	return nil
}

// Handle is a process-bound view of a PEATS. It implements TupleSpace.
type Handle struct {
	space *Space
	id    policy.ProcessID
}

var _ TupleSpace = (*Handle)(nil)

// ID returns the process identity the handle is bound to.
func (h *Handle) ID() policy.ProcessID { return h.id }

// SubmitWrites accumulates into ws the shards the given submitted op
// may mutate, reporting whether the op is read-only. It is shared with
// the replicated service so both realisations scope their critical
// sections identically: reads need no entry because scoped transactions
// hold shared locks on every other shard.
func SubmitWrites(sp *space.Space, ws *space.ShardSet, code policy.Op, tmpl, entry tuple.Tuple) (readOnly bool, err error) {
	switch code {
	case policy.OpOut, policy.OpCas:
		ws.Add(sp.EntryShard(entry))
	case policy.OpInp:
		if idx, keyed := sp.TemplateShard(tmpl); keyed {
			ws.Add(idx)
		} else {
			// A wildcard-first destructive read may remove from any shard.
			ws.AddAll()
		}
	case policy.OpRdp, policy.OpRdAll:
		return true, nil
	default:
		return false, fmt.Errorf("peats: op %v cannot be submitted", code)
	}
	return false, nil
}

// Submit implements TupleSpace: the ops execute as one atomic,
// monitor-vetted unit inside a single scoped critical section (a
// submission of only read-only ops runs entirely under shared locks).
// Each op is vetted and executed against the state produced by its
// predecessors; the whole unit takes effect only if no op is denied or
// malformed and every InpOp finds a match. On abort the space is left
// untouched and the returned results cover the attempted prefix.
func (h *Handle) Submit(_ context.Context, ops ...Op) ([]Result, error) {
	if len(ops) == 0 {
		return nil, errors.New("peats: empty submission")
	}
	var ws space.ShardSet
	readOnly := true
	for _, op := range ops {
		ro, err := SubmitWrites(h.space.inner, &ws, op.Code, op.Template, op.Entry)
		if err != nil {
			return nil, err
		}
		readOnly = readOnly && ro
	}
	var (
		results []Result
		err     error
	)
	run := func(tx *space.Tx) { results, err = h.submitIn(tx, ops) }
	if readOnly {
		h.space.inner.DoRead(run)
	} else {
		if f := h.space.framer; f != nil && len(ops) > 1 {
			// Frame the transaction's journal entries into one WAL unit
			// before taking shard locks (the framer serializes framed
			// transactions; lock order framer → shards is uniform).
			f.BeginLocalUnit()
			defer f.CommitLocalUnit()
		}
		h.space.inner.DoScoped(ws, run)
	}
	return results, err
}

// submitIn executes the submission inside an open critical section.
func (h *Handle) submitIn(tx *space.Tx, ops []Op) ([]Result, error) {
	st := tx.Stage()
	results := make([]Result, 0, len(ops))
	for i, op := range ops {
		inv := policy.Invocation{
			Invoker: h.id, Op: op.Code,
			Template: op.Template, Entry: op.Entry,
			TxIndex: i, TxLen: len(ops),
		}
		if err := h.space.evaluate(inv, st); err != nil {
			return results, err
		}
		var res Result
		switch op.Code {
		case policy.OpOut:
			if err := st.Out(op.Entry); err != nil {
				return results, err
			}
			res = NewResult(op, false, false, tuple.Tuple{}, nil)
		case policy.OpRdp:
			t, ok := st.Rdp(op.Template)
			res = NewResult(op, ok, false, t, nil)
		case policy.OpInp:
			t, ok := st.Inp(op.Template)
			res = NewResult(op, ok, false, t, nil)
			if !ok {
				results = append(results, res)
				if len(ops) > 1 {
					return results, fmt.Errorf("%w: op %d (inp %v) found no match",
						ErrAborted, i, op.Template)
				}
				// A solo inp miss is a plain not-found, and it staged
				// nothing, so falling out without committing is identical
				// to committing.
				return results, nil
			}
		case policy.OpCas:
			ins, m, err := st.Cas(op.Template, op.Entry)
			if err != nil {
				return results, err
			}
			res = NewResult(op, false, ins, m, nil)
		case policy.OpRdAll:
			all := st.RdAll(op.Template)
			res = NewResult(op, len(all) > 0, false, tuple.Tuple{}, all)
		}
		results = append(results, res)
	}
	st.Commit()
	return results, nil
}

// Out inserts entry if the policy allows it: a one-op submission, so
// the monitor check and the insertion happen in one atomic section with
// only the entry's shard write-locked.
func (h *Handle) Out(ctx context.Context, entry tuple.Tuple) error {
	_, err := h.Submit(ctx, OutOp(entry))
	return err
}

// Rdp performs a non-blocking read if the policy allows it. The whole
// section runs under shared locks, concurrently with other readers.
func (h *Handle) Rdp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	res, err := h.Submit(ctx, RdpOp(tmpl))
	if err != nil {
		return tuple.Tuple{}, false, err
	}
	return res[0].Tuple, res[0].Found, nil
}

// Inp performs a non-blocking destructive read if the policy allows it.
func (h *Handle) Inp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	res, err := h.Submit(ctx, InpOp(tmpl))
	if err != nil {
		return tuple.Tuple{}, false, err
	}
	return res[0].Tuple, res[0].Found, nil
}

// Rd performs a blocking read if the policy allows it. The permission
// check precedes the wait; the paper's rd rules are unconditional, so
// the split is harmless.
func (h *Handle) Rd(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	inv := policy.Invocation{Invoker: h.id, Op: policy.OpRd, Template: tmpl}
	var err error
	h.space.inner.DoRead(func(tx *space.Tx) { err = h.space.evaluate(inv, tx) })
	if err != nil {
		return tuple.Tuple{}, err
	}
	return h.space.inner.Rd(ctx, tmpl)
}

// In performs a blocking destructive read if the policy allows it.
func (h *Handle) In(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, error) {
	inv := policy.Invocation{Invoker: h.id, Op: policy.OpIn, Template: tmpl}
	var err error
	h.space.inner.DoRead(func(tx *space.Tx) { err = h.space.evaluate(inv, tx) })
	if err != nil {
		return tuple.Tuple{}, err
	}
	return h.space.inner.In(ctx, tmpl)
}

// RdAll performs the bulk non-destructive read if the policy allows it.
// Like Rdp it runs entirely under shared locks.
func (h *Handle) RdAll(ctx context.Context, tmpl tuple.Tuple) ([]tuple.Tuple, error) {
	res, err := h.Submit(ctx, RdAllOp(tmpl))
	if err != nil {
		return nil, err
	}
	return res[0].Tuples, nil
}

// Cas performs the conditional atomic swap if the policy allows it.
// The monitor evaluation and the swap form a single atomic step.
func (h *Handle) Cas(ctx context.Context, tmpl, entry tuple.Tuple) (bool, tuple.Tuple, error) {
	res, err := h.Submit(ctx, CasOp(tmpl, entry))
	if err != nil {
		return false, tuple.Tuple{}, err
	}
	return res[0].Inserted, res[0].Tuple, nil
}

// PollRd emulates a blocking rd over a space that only offers rdp (the
// replicated client), by polling with the given interval. It is exported
// for algorithm implementations that must work over both realisations.
func PollRd(ctx context.Context, ts TupleSpace, tmpl tuple.Tuple, interval time.Duration) (tuple.Tuple, error) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		t, ok, err := ts.Rdp(ctx, tmpl)
		if err != nil {
			return tuple.Tuple{}, err
		}
		if ok {
			return t, nil
		}
		select {
		case <-ctx.Done():
			return tuple.Tuple{}, ctx.Err()
		case <-ticker.C:
		}
	}
}
