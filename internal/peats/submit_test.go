package peats

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
)

func TestSubmitMultiOpAtomicUnit(t *testing.T) {
	s := New(policy.AllowAll())
	h := s.Handle("p")
	ctx := context.Background()

	task := tuple.T(tuple.Str("pending"), tuple.Str("job7"))
	if err := h.Out(ctx, task); err != nil {
		t.Fatal(err)
	}
	// Atomic move: consume from pending, republish under done.
	res, err := h.Submit(ctx,
		InpOp(task),
		OutOp(tuple.T(tuple.Str("done"), tuple.Str("job7"))),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || !res[0].Found || !res[0].Tuple.Equal(task) {
		t.Fatalf("results = %+v", res)
	}
	if _, ok, _ := h.Rdp(ctx, tuple.T(tuple.Str("pending"), tuple.Any())); ok {
		t.Error("pending tuple survived the move")
	}
	if _, ok, _ := h.Rdp(ctx, tuple.T(tuple.Str("done"), tuple.Any())); !ok {
		t.Error("done tuple missing after the move")
	}

	// Re-running the same move aborts: the pending tuple is gone, so
	// the InpOp miss must discard the OutOp too.
	res, err = h.Submit(ctx,
		InpOp(task),
		OutOp(tuple.T(tuple.Str("done"), tuple.Str("job7"))),
	)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if len(res) != 1 || res[0].Found {
		t.Fatalf("aborted prefix = %+v", res)
	}
	all, err := h.RdAll(ctx, tuple.T(tuple.Str("done"), tuple.Any()))
	if err != nil || len(all) != 1 {
		t.Fatalf("done tuples after abort = %v (%v), want exactly 1", all, err)
	}
}

func TestSubmitOpsSeePredecessorEffects(t *testing.T) {
	s := New(policy.AllowAll())
	h := s.Handle("p")
	ctx := context.Background()

	// Out then Rdp/Inp of the same tuple inside one unit.
	entry := tuple.T(tuple.Str("SELF"), tuple.Int(1))
	res, err := h.Submit(ctx, OutOp(entry), RdpOp(tuple.T(tuple.Str("SELF"), tuple.Formal("v"))))
	if err != nil {
		t.Fatal(err)
	}
	if !res[1].Found || !res[1].Tuple.Equal(entry) {
		t.Fatalf("rdp after staged out: %+v", res[1])
	}
	if v, _ := res[1].Bindings["v"].IntValue(); v != 1 {
		t.Errorf("bindings = %v", res[1].Bindings)
	}
	// Consume-then-republish-then-consume chains through the overlay.
	res, err = h.Submit(ctx,
		InpOp(entry),
		OutOp(tuple.T(tuple.Str("SELF"), tuple.Int(2))),
		InpOp(tuple.T(tuple.Str("SELF"), tuple.Any())),
	)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res[2].Tuple.Field(1).IntValue(); v != 2 {
		t.Fatalf("final inp = %+v", res[2])
	}
	if s.Inner().Len() != 0 {
		t.Errorf("space len = %d, want 0", s.Inner().Len())
	}
}

func TestSubmitDenialAbortsWholeUnit(t *testing.T) {
	// Policy: out is free, inp is denied.
	pol := policy.New(policy.Rule{Name: "Rout", Op: policy.OpOut})
	s := New(pol)
	h := s.Handle("p")
	ctx := context.Background()

	res, err := h.Submit(ctx,
		OutOp(tuple.T(tuple.Str("X"), tuple.Int(1))),
		InpOp(tuple.T(tuple.Str("X"), tuple.Any())),
	)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	var denied *DeniedError
	if !errors.As(err, &denied) || denied.Detail == "" {
		t.Fatalf("denial detail missing: %v", err)
	}
	if len(res) != 1 {
		t.Fatalf("prefix = %+v, want the out alone", res)
	}
	// The allowed out must NOT have taken effect.
	if s.Inner().Len() != 0 {
		t.Error("denied unit left effects behind")
	}
	// The denial detail names the tx position.
	if want := "[tx 2/2]"; !contains(denied.Detail, want) {
		t.Errorf("detail %q lacks %q", denied.Detail, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSubmitEmptyAndUnsupported(t *testing.T) {
	h := New(policy.AllowAll()).Handle("p")
	ctx := context.Background()
	if _, err := h.Submit(ctx); err == nil {
		t.Error("empty submission accepted")
	}
	if _, err := h.Submit(ctx, Op{Code: policy.OpRd}); err == nil {
		t.Error("blocking rd accepted as submitted op")
	}
	// Malformed entry aborts without effects.
	res, err := h.Submit(ctx,
		OutOp(tuple.T(tuple.Str("OK"))),
		OutOp(tuple.T(tuple.Any())), // not an entry
	)
	if err == nil {
		t.Fatal("non-entry out accepted")
	}
	if len(res) != 1 || New(policy.AllowAll()).Inner().Len() != 0 {
		t.Fatalf("prefix = %+v", res)
	}
	if h.space.Inner().Len() != 0 {
		t.Error("aborted unit left effects behind")
	}
}

func TestSubmitConcurrentConflictingUnits(t *testing.T) {
	// Many goroutines race to claim one resource tuple with the same
	// atomic consume-and-mark unit: exactly one may win.
	for _, shards := range []int{1, 8} {
		s, err := NewSharded(policy.AllowAll(), space.EngineIndexed, shards)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if err := s.Handle("seed").Out(ctx, tuple.T(tuple.Str("RES"))); err != nil {
			t.Fatal(err)
		}
		const workers = 16
		var wg sync.WaitGroup
		var mu sync.Mutex
		winners := 0
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := s.Handle(policy.ProcessID(fmt.Sprintf("w%d", w)))
				_, err := h.Submit(ctx,
					InpOp(tuple.T(tuple.Str("RES"))),
					OutOp(tuple.T(tuple.Str("WINNER"), tuple.Int(int64(w)))),
				)
				if err == nil {
					mu.Lock()
					winners++
					mu.Unlock()
				} else if !errors.Is(err, ErrAborted) {
					t.Errorf("worker %d: %v", w, err)
				}
			}(w)
		}
		wg.Wait()
		if winners != 1 {
			t.Fatalf("shards=%d: %d winners, want 1", shards, winners)
		}
		all, err := s.Handle("r").RdAll(ctx, tuple.T(tuple.Str("WINNER"), tuple.Any()))
		if err != nil || len(all) != 1 {
			t.Fatalf("shards=%d: WINNER tuples = %v (%v)", shards, all, err)
		}
	}
}

func TestSubmitAllReadOnlyRunsUnderSharedLocks(t *testing.T) {
	// An all-read-only submission goes through DoRead: a mutating op in
	// it would panic on the writableShard guard, so success here proves
	// the shared-lock path was taken AND that read-only classification
	// is correct.
	s := New(policy.AllowAll())
	h := s.Handle("p")
	ctx := context.Background()
	if err := h.Out(ctx, tuple.T(tuple.Str("R"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	res, err := h.Submit(ctx,
		RdpOp(tuple.T(tuple.Str("R"), tuple.Any())),
		RdAllOp(tuple.T(tuple.Str("R"), tuple.Any())),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Found || len(res[1].Tuples) != 1 {
		t.Fatalf("results = %+v", res)
	}
}

// ---- Single-op Submit ≡ legacy method parity ----

type legacyStep struct {
	kind        int // 0 out, 1 rdp, 2 inp, 3 cas, 4 rdall
	tmpl, entry tuple.Tuple
}

func randParityStep(r *rand.Rand) legacyStep {
	tags := []string{"A", "B", "C"}
	entry := tuple.T(tuple.Str(tags[r.Intn(len(tags))]), tuple.Int(int64(r.Intn(4))))
	var tmpl tuple.Tuple
	switch r.Intn(4) {
	case 0:
		tmpl = tuple.T(tuple.Any(), tuple.Int(int64(r.Intn(4))))
	case 1:
		tmpl = tuple.T(tuple.Str(tags[r.Intn(len(tags))]), tuple.Formal("v"))
	default:
		tmpl = tuple.T(tuple.Str(tags[r.Intn(len(tags))]), tuple.Int(int64(r.Intn(4))))
	}
	return legacyStep{kind: r.Intn(5), tmpl: tmpl, entry: entry}
}

// parityPolicy denies a slice of the operation space so the parity
// suite also covers denial outcomes: inp of tag "C" is never allowed.
func parityPolicy() policy.Policy {
	allow := func(op policy.Op) policy.Rule { return policy.Rule{Name: "allow", Op: op} }
	return policy.New(
		allow(policy.OpOut), allow(policy.OpRdp), allow(policy.OpRdAll), allow(policy.OpCas),
		policy.Rule{Name: "Rinp", Op: policy.OpInp,
			When: policy.Not(policy.TemplateField(0, tuple.Str("C")))},
	)
}

// TestSubmitSingleOpParityLocal runs the same randomized operation
// sequence through the legacy TupleSpace methods and through one-op
// Submit, on both engines at shard counts {1, 4, 16}: outcomes, errors,
// monitor counters and final contents must be identical — the legacy
// methods are wrappers, not a second execution path.
func TestSubmitSingleOpParityLocal(t *testing.T) {
	ctx := context.Background()
	for _, e := range []space.Engine{space.EngineSlice, space.EngineIndexed} {
		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/%d", e, shards), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(7 + shards)))
				legacy, err := NewSharded(parityPolicy(), e, shards)
				if err != nil {
					t.Fatal(err)
				}
				viaSubmit, err := NewSharded(parityPolicy(), e, shards)
				if err != nil {
					t.Fatal(err)
				}
				hl := legacy.Handle("p")
				hs := viaSubmit.Handle("p")
				for i := 0; i < 400; i++ {
					step := randParityStep(r)
					a := runLegacy(ctx, hl, step)
					b := runSubmit(ctx, hs, step)
					if a != b {
						t.Fatalf("step %d (%+v): legacy %q vs submit %q", i, step, a, b)
					}
				}
				if !reflect.DeepEqual(legacy.Inner().Snapshot(), viaSubmit.Inner().Snapshot()) {
					t.Fatal("final contents diverge")
				}
				if legacy.Stats() != viaSubmit.Stats() {
					t.Fatalf("monitor counters diverge: %+v vs %+v",
						legacy.Stats(), viaSubmit.Stats())
				}
			})
		}
	}
}

func runLegacy(ctx context.Context, h *Handle, s legacyStep) string {
	switch s.kind {
	case 0:
		return fmt.Sprint("out:", h.Out(ctx, s.entry))
	case 1:
		u, ok, err := h.Rdp(ctx, s.tmpl)
		return fmt.Sprint("rdp:", u, ok, err)
	case 2:
		u, ok, err := h.Inp(ctx, s.tmpl)
		return fmt.Sprint("inp:", u, ok, err)
	case 3:
		ins, m, err := h.Cas(ctx, s.tmpl, s.entry)
		return fmt.Sprint("cas:", ins, m, err)
	default:
		all, err := h.RdAll(ctx, s.tmpl)
		return fmt.Sprint("rdall:", all, err)
	}
}

func runSubmit(ctx context.Context, h *Handle, s legacyStep) string {
	one := func(op Op) (Result, error) {
		res, err := h.Submit(ctx, op)
		if err != nil {
			return Result{}, err
		}
		return res[0], nil
	}
	switch s.kind {
	case 0:
		_, err := one(OutOp(s.entry))
		return fmt.Sprint("out:", err)
	case 1:
		r, err := one(RdpOp(s.tmpl))
		return fmt.Sprint("rdp:", r.Tuple, r.Found, err)
	case 2:
		r, err := one(InpOp(s.tmpl))
		return fmt.Sprint("inp:", r.Tuple, r.Found, err)
	case 3:
		r, err := one(CasOp(s.tmpl, s.entry))
		return fmt.Sprint("cas:", r.Inserted, r.Tuple, err)
	default:
		r, err := one(RdAllOp(s.tmpl))
		return fmt.Sprint("rdall:", r.Tuples, err)
	}
}

func TestSubmitBindingsOnCasMiss(t *testing.T) {
	s := New(policy.AllowAll())
	h := s.Handle("p")
	ctx := context.Background()
	if err := h.Out(ctx, tuple.T(tuple.Str("DEC"), tuple.Int(42))); err != nil {
		t.Fatal(err)
	}
	res, err := h.Submit(ctx, CasOp(
		tuple.T(tuple.Str("DEC"), tuple.Formal("d")),
		tuple.T(tuple.Str("DEC"), tuple.Int(99)),
	))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Inserted {
		t.Fatal("cas inserted over an existing decision")
	}
	if v, _ := res[0].Bindings["d"].IntValue(); v != 42 {
		t.Errorf("bindings = %v, want d=42", res[0].Bindings)
	}
}
