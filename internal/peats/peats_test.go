package peats

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
)

func TestHandleAllOpsAllowAll(t *testing.T) {
	s := New(policy.AllowAll())
	h := s.Handle("p1")
	ctx := context.Background()

	if err := h.Out(ctx, tuple.T(tuple.Str("X"), tuple.Int(1))); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := h.Rdp(ctx, tuple.T(tuple.Str("X"), tuple.Any())); err != nil || !ok || got.Arity() != 2 {
		t.Fatalf("rdp = %v %v %v", got, ok, err)
	}
	if got, err := h.Rd(ctx, tuple.T(tuple.Str("X"), tuple.Any())); err != nil || got.Arity() != 2 {
		t.Fatalf("rd = %v %v", got, err)
	}
	if got, ok, err := h.Inp(ctx, tuple.T(tuple.Str("X"), tuple.Any())); err != nil || !ok || got.Arity() != 2 {
		t.Fatalf("inp = %v %v %v", got, ok, err)
	}
	if err := h.Out(ctx, tuple.T(tuple.Str("Y"))); err != nil {
		t.Fatal(err)
	}
	if got, err := h.In(ctx, tuple.T(tuple.Str("Y"))); err != nil || got.Arity() != 1 {
		t.Fatalf("in = %v %v", got, err)
	}
	ins, _, err := h.Cas(ctx, tuple.T(tuple.Str("Z"), tuple.Formal("v")), tuple.T(tuple.Str("Z"), tuple.Int(9)))
	if err != nil || !ins {
		t.Fatalf("cas = %v %v", ins, err)
	}
}

func TestDenialDoesNotTouchState(t *testing.T) {
	// Policy: only cas of DECISION tuples allowed (Fig. 3 shape).
	pol := policy.New(policy.Rule{
		Name: "Rcas",
		Op:   policy.OpCas,
		When: policy.And(
			policy.EntryArity(2),
			policy.EntryField(0, tuple.Str("DECISION")),
			policy.TemplateFieldFormal(1),
		),
	})
	s := New(pol)
	h := s.Handle("p1")
	ctx := context.Background()

	if err := h.Out(ctx, tuple.T(tuple.Str("DECISION"), tuple.Int(1))); !errors.Is(err, ErrDenied) {
		t.Errorf("out err = %v, want ErrDenied", err)
	}
	if _, _, err := h.Inp(ctx, tuple.T(tuple.Any(), tuple.Any())); !errors.Is(err, ErrDenied) {
		t.Errorf("inp err = %v, want ErrDenied", err)
	}
	if s.Inner().Len() != 0 {
		t.Error("denied operation mutated the space")
	}

	// A conforming cas is allowed exactly once; the DECISION persists.
	ins, _, err := h.Cas(ctx, tuple.T(tuple.Str("DECISION"), tuple.Formal("d")),
		tuple.T(tuple.Str("DECISION"), tuple.Int(4)))
	if err != nil || !ins {
		t.Fatalf("cas = %v %v", ins, err)
	}
	// cas with non-formal second template field: denied.
	_, _, err = h.Cas(ctx, tuple.T(tuple.Str("DECISION"), tuple.Int(4)),
		tuple.T(tuple.Str("DECISION"), tuple.Int(5)))
	if !errors.Is(err, ErrDenied) {
		t.Errorf("non-formal cas err = %v, want ErrDenied", err)
	}

	st := s.Stats()
	if st.Allowed != 1 || st.Denied != 3 {
		t.Errorf("stats = %+v, want 1 allowed / 3 denied", st)
	}
}

func TestPolicySeesInvokerIdentity(t *testing.T) {
	pol := policy.New(policy.Rule{
		Name: "Rout",
		Op:   policy.OpOut,
		When: policy.And(policy.InvokerIn("alice"), policy.EntryFieldIsInvoker(0)),
	})
	s := New(pol)
	ctx := context.Background()

	alice, bob := s.Handle("alice"), s.Handle("bob")
	if err := alice.Out(ctx, tuple.T(tuple.Str("alice"), tuple.Int(1))); err != nil {
		t.Errorf("alice out: %v", err)
	}
	// Alice cannot claim to be bob in the tuple.
	if err := alice.Out(ctx, tuple.T(tuple.Str("bob"), tuple.Int(1))); !errors.Is(err, ErrDenied) {
		t.Errorf("impersonation err = %v, want ErrDenied", err)
	}
	// Bob is not in the ACL at all.
	if err := bob.Out(ctx, tuple.T(tuple.Str("bob"), tuple.Int(1))); !errors.Is(err, ErrDenied) {
		t.Errorf("bob out err = %v, want ErrDenied", err)
	}
}

func TestStatefulPolicyAtomicWithCas(t *testing.T) {
	// A cas that is only allowed while fewer than 1 MARK tuples exist.
	// Concurrent invocations must never both pass the monitor and insert,
	// proving check+execute is atomic.
	pol := policy.New(policy.Rule{
		Name: "Rcas",
		Op:   policy.OpCas,
		When: policy.Check(func(_ policy.Invocation, st policy.StateView) bool {
			return st.CountMatching(tuple.T(tuple.Str("MARK"), tuple.Any())) == 0
		}),
	})
	s := New(pol)
	ctx := context.Background()

	const workers = 16
	var wg sync.WaitGroup
	inserted := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			h := s.Handle(policy.ProcessID("p"))
			ins, _, err := h.Cas(ctx,
				tuple.T(tuple.Str("MARK"), tuple.Formal("x")),
				tuple.T(tuple.Str("MARK"), tuple.Int(v)))
			if err == nil && ins {
				inserted <- struct{}{}
			}
		}(int64(i))
	}
	wg.Wait()
	close(inserted)
	n := 0
	for range inserted {
		n++
	}
	if n != 1 {
		t.Errorf("%d cas calls succeeded, want 1", n)
	}
	if got := s.Inner().CountMatching(tuple.T(tuple.Str("MARK"), tuple.Any())); got != 1 {
		t.Errorf("%d MARK tuples stored, want 1", got)
	}
}

func TestWrapSharesSpace(t *testing.T) {
	inner := space.New()
	if err := inner.Out(tuple.T(tuple.Str("PRE"))); err != nil {
		t.Fatal(err)
	}
	s := Wrap(inner, policy.AllowAll())
	if _, ok, err := s.Handle("p").Rdp(context.Background(), tuple.T(tuple.Str("PRE"))); err != nil || !ok {
		t.Error("wrapped space does not see pre-existing tuples")
	}
	if s.Inner() != inner {
		t.Error("Inner() should return the wrapped space")
	}
}

func TestRdDeniedBeforeBlocking(t *testing.T) {
	pol := policy.New() // deny everything
	h := New(pol).Handle("p")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	_, err := h.Rd(ctx, tuple.T(tuple.Str("X")))
	if !errors.Is(err, ErrDenied) {
		t.Errorf("err = %v, want ErrDenied", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("denied rd blocked instead of failing fast")
	}
	_, err = h.In(ctx, tuple.T(tuple.Str("X")))
	if !errors.Is(err, ErrDenied) {
		t.Errorf("in err = %v, want ErrDenied", err)
	}
}

func TestPollRd(t *testing.T) {
	s := New(policy.AllowAll())
	h := s.Handle("p1")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	go func() {
		time.Sleep(20 * time.Millisecond)
		_ = h.Out(context.Background(), tuple.T(tuple.Str("LATE"), tuple.Int(1)))
	}()
	got, err := PollRd(ctx, h, tuple.T(tuple.Str("LATE"), tuple.Any()), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Field(1).IntValue(); v != 1 {
		t.Errorf("PollRd got %v", got)
	}
}

func TestPollRdCancellation(t *testing.T) {
	s := New(policy.AllowAll())
	h := s.Handle("p1")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := PollRd(ctx, h, tuple.T(tuple.Str("NEVER")), time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestPollRdPropagatesDenial(t *testing.T) {
	h := New(policy.New()).Handle("p")
	_, err := PollRd(context.Background(), h, tuple.T(tuple.Str("X")), time.Millisecond)
	if !errors.Is(err, ErrDenied) {
		t.Errorf("err = %v, want ErrDenied", err)
	}
}

func TestHandleID(t *testing.T) {
	h := New(policy.AllowAll()).Handle("p7")
	if h.ID() != "p7" {
		t.Errorf("ID = %v", h.ID())
	}
}

func TestHandleRdAll(t *testing.T) {
	s := New(policy.AllowAll())
	h := s.Handle("p")
	ctx := context.Background()
	for i := int64(0); i < 3; i++ {
		if err := h.Out(ctx, tuple.T(tuple.Str("X"), tuple.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	all, err := h.RdAll(ctx, tuple.T(tuple.Str("X"), tuple.Any()))
	if err != nil || len(all) != 3 {
		t.Fatalf("RdAll = %d tuples, err %v", len(all), err)
	}
	// Denied under a policy without an rdAll rule.
	restricted := New(policy.New(policy.Rule{Name: "r", Op: policy.OpRdp})).Handle("p")
	if _, err := restricted.RdAll(ctx, tuple.T(tuple.Any())); !errors.Is(err, ErrDenied) {
		t.Errorf("err = %v, want ErrDenied", err)
	}
}
