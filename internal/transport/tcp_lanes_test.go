package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"peats/internal/auth"
)

// newTCPPair builds a sender→receiver pair with the sender using cfg.
func newTCPPair(t *testing.T, cfg TCPConfig) (sender, receiver *TCP, cleanup func()) {
	t.Helper()
	ids := []string{"a", "b"}
	master := []byte("pair-master")
	recv, err := NewTCP("b", "127.0.0.1:0", nil, auth.NewKeyringFromMaster(master, "b", ids))
	if err != nil {
		t.Fatal(err)
	}
	send, err := NewTCPWithConfig("a", "127.0.0.1:0",
		map[string]string{"b": recv.Addr()},
		auth.NewKeyringFromMaster(master, "a", ids), cfg)
	if err != nil {
		recv.Close()
		t.Fatal(err)
	}
	recv.SetPeerAddr("a", send.Addr())
	return send, recv, func() { _ = send.Close(); _ = recv.Close() }
}

// reserveAddr grabs an ephemeral port and releases it, returning an
// address that is momentarily guaranteed closed but bindable.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestTCPConcurrentSenders exercises many goroutines funnelling into one
// peer's lane under -race: every frame must arrive, and each sender's
// own frames must stay FIFO (lane order is enqueue order).
func TestTCPConcurrentSenders(t *testing.T) {
	send, recv, cleanup := newTCPPair(t, TCPConfig{})
	defer cleanup()

	const senders, frames = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				if err := send.Send("b", []byte(fmt.Sprintf("g%d-%04d", g, i))); err != nil {
					t.Errorf("send g%d i%d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	last := make(map[string]int, senders)
	for n := 0; n < senders*frames; n++ {
		m := recvWithin(t, recv, 5*time.Second)
		var g, i int
		if _, err := fmt.Sscanf(string(m.Payload), "g%d-%d", &g, &i); err != nil {
			t.Fatalf("bad payload %q: %v", m.Payload, err)
		}
		key := fmt.Sprintf("g%d", g)
		if prev, ok := last[key]; ok && i <= prev {
			t.Fatalf("sender %s reordered: %d after %d", key, i, prev)
		}
		last[key] = i
	}
}

// TestTCPRequestClassFIFO checks FIFO delivery within the request lane.
func TestTCPRequestClassFIFO(t *testing.T) {
	send, recv, cleanup := newTCPPair(t, TCPConfig{})
	defer cleanup()
	const count = 100
	for i := 0; i < count; i++ {
		if err := send.SendClass("b", []byte(fmt.Sprintf("q%04d", i)), ClassRequest); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		m := recvWithin(t, recv, 5*time.Second)
		if want := fmt.Sprintf("q%04d", i); string(m.Payload) != want {
			t.Fatalf("position %d = %q, want %q", i, m.Payload, want)
		}
	}
}

// TestTCPKillRedialMidStream kills the receiver mid-stream, brings a
// fresh one up on a new address, and checks the writer redials and
// delivery resumes (in-flight loss is fine; the model is lossy).
func TestTCPKillRedialMidStream(t *testing.T) {
	ids := []string{"a", "b"}
	master := []byte("redial-master")
	krA := auth.NewKeyringFromMaster(master, "a", ids)
	recv1, err := NewTCP("b", "127.0.0.1:0", nil, auth.NewKeyringFromMaster(master, "b", ids))
	if err != nil {
		t.Fatal(err)
	}
	send, err := NewTCPWithConfig("a", "127.0.0.1:0",
		map[string]string{"b": recv1.Addr()}, krA,
		TCPConfig{RedialBackoff: 10 * time.Millisecond, RedialBackoffMax: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	if err := send.Send("b", []byte("before")); err != nil {
		t.Fatal(err)
	}
	if m := recvWithin(t, recv1, 5*time.Second); string(m.Payload) != "before" {
		t.Fatalf("got %q", m.Payload)
	}
	_ = recv1.Close()

	// A few sends race the dead connection; they may be lost.
	for i := 0; i < 3; i++ {
		_ = send.Send("b", []byte("limbo"))
	}

	recv2, err := NewTCP("b", "127.0.0.1:0", nil, auth.NewKeyringFromMaster(master, "b", ids))
	if err != nil {
		t.Fatal(err)
	}
	defer recv2.Close()
	send.SetPeerAddr("b", recv2.Addr())

	deadline := time.After(5 * time.Second)
	for {
		_ = send.Send("b", []byte("after"))
		select {
		case m := <-recv2.Inbox():
			if string(m.Payload) == "after" {
				return
			}
		case <-deadline:
			t.Fatal("no delivery after redial")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestTCPOversizedFrameDropsConn checks that a frame whose declared
// length exceeds maxFrame closes the connection without delivering.
func TestTCPOversizedFrameDropsConn(t *testing.T) {
	kr := auth.NewKeyringFromMaster([]byte("m"), "r0", []string{"r0", "r1"})
	tr, err := NewTCP("r0", "127.0.0.1:0", nil, kr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	conn, err := netDialTCP(tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	expectSilence(t, tr, 100*time.Millisecond)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(hdr[:1]); err != io.EOF {
		t.Fatalf("conn read = %v, want EOF (connection dropped)", err)
	}
}

// sealTestFrame hand-crafts one wire frame from → to, optionally with a
// corrupted MAC.
func sealTestFrame(t *testing.T, kr *auth.Keyring, from, to string, payload []byte, corruptMAC bool) []byte {
	t.Helper()
	body := appendFrameBody(nil, from, to, kindMsg, 0, 0, 0, payload)
	mac, err := kr.MAC(to, body)
	if err != nil {
		t.Fatal(err)
	}
	if corruptMAC {
		mac[0] ^= 0xff
	}
	frame := appendWireString(nil, from)
	frame = append(frame, kindMsg)
	frame = appendWireBytes(frame, payload)
	frame = appendWireBytes(frame, mac)
	out := make([]byte, 4, 4+len(frame))
	binary.BigEndian.PutUint32(out, uint32(len(frame)))
	return append(out, frame...)
}

// TestTCPMACFailureDropsFrameNotConn sends a bad-MAC frame followed by a
// good one on the SAME connection: the forged frame must vanish while
// the connection survives to deliver the good frame. (Dropping the conn
// would let one corrupted frame sever an otherwise healthy link.)
func TestTCPMACFailureDropsFrameNotConn(t *testing.T) {
	ids := []string{"r0", "r1"}
	master := []byte("mac-master")
	tr, err := NewTCP("r0", "127.0.0.1:0", nil, auth.NewKeyringFromMaster(master, "r0", ids))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	krSender := auth.NewKeyringFromMaster(master, "r1", ids)
	conn, err := netDialTCP(tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(sealTestFrame(t, krSender, "r1", "r0", []byte("forged"), true)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(sealTestFrame(t, krSender, "r1", "r0", []byte("genuine"), false)); err != nil {
		t.Fatal(err)
	}
	m := recvWithin(t, tr, 5*time.Second)
	if m.From != "r1" || string(m.Payload) != "genuine" {
		t.Fatalf("got %+v, want genuine from r1", m)
	}
	expectSilence(t, tr, 100*time.Millisecond)
}

// TestTCPPriorityOrdering queues frames of all three classes while the
// peer is unreachable, then brings the peer up: the backlog must drain
// protocol first, request second, bulk last, regardless of enqueue
// order.
func TestTCPPriorityOrdering(t *testing.T) {
	ids := []string{"a", "b"}
	master := []byte("prio-master")
	addr := reserveAddr(t)
	send, err := NewTCPWithConfig("a", "127.0.0.1:0",
		map[string]string{"b": addr},
		auth.NewKeyringFromMaster(master, "a", ids),
		TCPConfig{RedialBackoff: 50 * time.Millisecond, RedialBackoffMax: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	// The control writer pops this frame immediately and parks in dial
	// backoff, leaving the lanes free to accumulate the real test
	// frames.
	if err := send.Send("b", []byte("sync")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// Enqueue in ANTI-priority order: requests first, protocol last.
	// A bulk frame rides along; it travels its own connection, so only
	// its arrival — not its position — is asserted.
	for i := 0; i < 3; i++ {
		if err := send.SendClass("b", []byte(fmt.Sprintf("request%d", i)), ClassRequest); err != nil {
			t.Fatal(err)
		}
	}
	if err := send.SendClass("b", []byte("bulk"), ClassBulk); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := send.SendClass("b", []byte(fmt.Sprintf("protocol%d", i)), ClassProtocol); err != nil {
			t.Fatal(err)
		}
	}

	recv, err := NewTCP("b", addr, nil, auth.NewKeyringFromMaster(master, "b", ids))
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	var ctl []string
	gotBulk := false
	for len(ctl) < 7 || !gotBulk {
		m := recvWithin(t, recv, 5*time.Second)
		if string(m.Payload) == "bulk" {
			gotBulk = true
			continue
		}
		ctl = append(ctl, string(m.Payload))
	}
	want := []string{"sync", "protocol0", "protocol1", "protocol2", "request0", "request1", "request2"}
	for i, w := range want {
		if ctl[i] != w {
			t.Fatalf("control-lane position %d = %q, want %q (got %v)", i, ctl[i], w, ctl)
		}
	}
}

// TestTCPDuplicateDialTieBreak has both sides dial simultaneously and
// checks they converge on ONE connection per side (the one dialed by
// the lower identity) with traffic still flowing both ways.
func TestTCPDuplicateDialTieBreak(t *testing.T) {
	ids := []string{"r0", "r1"}
	master := []byte("tie-master")
	a, err := NewTCP("r0", "127.0.0.1:0", nil, auth.NewKeyringFromMaster(master, "r0", ids))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP("r1", "127.0.0.1:0", nil, auth.NewKeyringFromMaster(master, "r1", ids))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeerAddr("r1", b.Addr())
	b.SetPeerAddr("r0", a.Addr())

	// Both dial at once.
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = a.Send("r1", []byte(fmt.Sprintf("a%d", i)))
			_ = b.Send("r0", []byte(fmt.Sprintf("b%d", i)))
		}(i)
	}
	wg.Wait()
	for i := 0; i < 10; i++ {
		recvWithin(t, a, 5*time.Second)
		recvWithin(t, b, 5*time.Second)
	}

	// The redundant connection (dialed by the higher identity) is closed
	// by its owner once the tie-break resolves; poll until both sides
	// report exactly one live connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ca, cb := a.Stats().Conns, b.Stats().Conns
		if ca == 1 && cb == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("conns did not converge: a=%d b=%d", ca, cb)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The surviving connection still carries traffic both ways.
	if err := a.Send("r1", []byte("post-a")); err != nil {
		t.Fatal(err)
	}
	if m := recvWithin(t, b, 5*time.Second); string(m.Payload) != "post-a" {
		t.Fatalf("got %q", m.Payload)
	}
	if err := b.Send("r0", []byte("post-b")); err != nil {
		t.Fatal(err)
	}
	if m := recvWithin(t, a, 5*time.Second); string(m.Payload) != "post-b" {
		t.Fatalf("got %q", m.Payload)
	}
	if ca, cb := a.Stats().Conns, b.Stats().Conns; ca != 1 || cb != 1 {
		t.Fatalf("conns regrew after tie-break: a=%d b=%d", ca, cb)
	}
}

// TestTCPBackpressure exercises every lane's overflow policy against an
// unreachable peer (the writer parks in dial backoff, so lanes fill).
func TestTCPBackpressure(t *testing.T) {
	ids := []string{"a", "b"}
	send, err := NewTCPWithConfig("a", "127.0.0.1:0",
		map[string]string{"b": reserveAddr(t)},
		auth.NewKeyringFromMaster([]byte("bp-master"), "a", ids),
		TCPConfig{
			ProtocolDepth: 2, RequestDepth: 2, BulkDepth: 2, BulkChunk: 8,
			RedialBackoff: time.Hour, RedialBackoffMax: time.Hour,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	// Sacrificial frame: the writer pops it, fails the dial, and parks
	// for an hour — from here on the lanes only fill.
	if err := send.Send("b", []byte("sac")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Request lane: reject-newest at depth.
	for i := 0; i < 2; i++ {
		if err := send.SendClass("b", []byte("r"), ClassRequest); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if err := send.SendClass("b", []byte("r"), ClassRequest); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("request overflow = %v, want ErrBackpressure", err)
	}

	// Protocol lane: drop-oldest, error is only a congestion signal.
	for i := 0; i < 2; i++ {
		if err := send.SendClass("b", []byte("p"), ClassProtocol); err != nil {
			t.Fatalf("protocol %d: %v", i, err)
		}
	}
	if err := send.SendClass("b", []byte("p"), ClassProtocol); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("protocol overflow = %v, want ErrBackpressure", err)
	}
	if got := send.Stats().ProtoDropped; got != 1 {
		t.Fatalf("ProtoDropped = %d, want 1 (drop-oldest admitted the new frame)", got)
	}

	// Bulk lane: whole-message admission — 17 bytes → 3 chunks > depth 2.
	if err := send.SendClass("b", make([]byte, 17), ClassBulk); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("oversized bulk = %v, want ErrBackpressure", err)
	}
	if err := send.SendClass("b", make([]byte, 8), ClassBulk); err != nil {
		t.Fatalf("1-chunk bulk: %v", err)
	}
	if err := send.SendClass("b", make([]byte, 16), ClassBulk); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("2-chunk bulk into 1-slot lane = %v, want ErrBackpressure", err)
	}
	if got := send.Stats().Backpressure; got < 4 {
		t.Fatalf("Backpressure = %d, want ≥ 4", got)
	}
}

// TestTCPBulkChunkReassembly sends a payload many times the chunk size
// and checks it arrives as ONE message, byte-identical, while protocol
// frames sent after it overtake it (chunking exists precisely so they
// can).
func TestTCPBulkChunkReassembly(t *testing.T) {
	send, recv, cleanup := newTCPPair(t, TCPConfig{BulkChunk: 1024})
	defer cleanup()

	big := make([]byte, 10_000)
	for i := range big {
		big[i] = byte(i * 7)
	}
	if err := send.SendClass("b", big, ClassBulk); err != nil {
		t.Fatal(err)
	}
	if err := send.Send("b", []byte("vote")); err != nil {
		t.Fatal(err)
	}

	var gotBulk, gotVote bool
	for !gotBulk || !gotVote {
		m := recvWithin(t, recv, 5*time.Second)
		switch {
		case len(m.Payload) == len(big):
			for i := range big {
				if m.Payload[i] != big[i] {
					t.Fatalf("bulk payload corrupt at byte %d", i)
				}
			}
			gotBulk = true
		case string(m.Payload) == "vote":
			gotVote = true
		default:
			t.Fatalf("unexpected message %q…(%d bytes)", m.Payload[:min(8, len(m.Payload))], len(m.Payload))
		}
	}
}

// BenchmarkTCPSend measures the full send path — enqueue, seal, flush,
// verify, deliver — in allocs/op and reports the coalescing ratio. The
// per-frame sub-benchmark is the old one-write(2)-per-frame behaviour.
func BenchmarkTCPSend(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  TCPConfig
	}{
		{"coalesced", TCPConfig{}},
		{"per-frame", TCPConfig{NoCoalesce: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ids := []string{"a", "b"}
			master := []byte("bench-master")
			recv, err := NewTCP("b", "127.0.0.1:0", nil, auth.NewKeyringFromMaster(master, "b", ids))
			if err != nil {
				b.Fatal(err)
			}
			defer recv.Close()
			send, err := NewTCPWithConfig("a", "127.0.0.1:0",
				map[string]string{"b": recv.Addr()},
				auth.NewKeyringFromMaster(master, "a", ids), mode.cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer send.Close()

			var delivered atomic.Uint64
			go func() {
				for range recv.Inbox() {
					delivered.Add(1)
				}
			}()
			payload := make([]byte, 256)

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// ErrBackpressure on the protocol lane means drop-oldest
				// kicked in — the frame was still admitted.
				if err := send.Send("b", payload); err != nil && !errors.Is(err, ErrBackpressure) {
					b.Fatal(err)
				}
			}
			// Wait for the pipeline to drain so sealing and delivery are
			// inside the measured window.
			for delivered.Load()+send.Stats().ProtoDropped < uint64(b.N) {
				time.Sleep(100 * time.Microsecond)
			}
			b.StopTimer()
			st := send.Stats()
			if st.Writes > 0 {
				b.ReportMetric(float64(st.FramesSent)/float64(st.Writes), "frames/write")
			}
		})
	}
}
