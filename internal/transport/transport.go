// Package transport provides the point-to-point messaging layer of the
// replicated PEATS (Fig. 2): an interface over which the BFT protocol
// exchanges messages, with two implementations — an in-process simulated
// network with fault injection (drops, delays, partitions) for tests and
// benchmarks, and a TCP transport with HMAC-authenticated frames for
// real deployments.
package transport

import "errors"

// ErrClosed is returned by Send after the transport is closed.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when sending to an unregistered identity.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// Inbound is a received message with its authenticated sender identity.
// The transport guarantees From is genuine (in-process: enforced by the
// hub; TCP: verified by per-pair MAC), which is the no-impersonation
// assumption of the model (§2.1).
type Inbound struct {
	From    string
	Payload []byte
}

// Transport is an asynchronous, authenticated point-to-point channel
// bundle for one node.
//
// Send is best-effort and non-blocking: the network may drop or delay
// messages arbitrarily (asynchronous system model); protocols must
// retransmit. Send takes ownership of the payload — the caller must
// not mutate the buffer afterwards (implementations may hand it to
// receivers without copying). Inbox delivers received messages until
// Close; receivers must treat payloads as read-only.
type Transport interface {
	// Self returns this node's identity.
	Self() string
	// Send queues payload for delivery to the named peer.
	Send(to string, payload []byte) error
	// Inbox returns the channel of received messages. After Close no
	// further messages are delivered; consumers must also watch their
	// own stop signal rather than rely on the channel closing.
	Inbox() <-chan Inbound
	// Close releases resources and closes the inbox.
	Close() error
}
