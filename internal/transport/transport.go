// Package transport provides the point-to-point messaging layer of the
// replicated PEATS (Fig. 2): an interface over which the BFT protocol
// exchanges messages, with two implementations — an in-process simulated
// network with fault injection (drops, delays, partitions) for tests and
// benchmarks, and a TCP transport with HMAC-authenticated frames for
// real deployments.
package transport

import "errors"

// ErrClosed is returned by Send after the transport is closed.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when sending to an unregistered identity.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// ErrBackpressure reports that a per-peer send lane is full. For the
// request and bulk lanes the message was NOT queued — the caller decides
// whether to retry, drop, or slow down (state transfer re-serves packs
// on the next request; clients retransmit). For the protocol lane the
// message WAS queued and the oldest queued frame was dropped instead
// (protocol traffic is retransmittable by design), so the error is
// purely a congestion signal the batcher can use to pace proposals.
var ErrBackpressure = errors.New("transport: send queue full")

// Class is the priority lane a message travels in. Lower values drain
// strictly first on a congested link, so a multi-megabyte state pack
// can never head-of-line-block a vote.
type Class uint8

const (
	// ClassProtocol carries agreement traffic: proposals, votes,
	// checkpoints, view changes. Highest priority, drop-oldest on
	// overflow (the protocol retransmits via repair).
	ClassProtocol Class = iota
	// ClassRequest carries client requests and replies.
	ClassRequest
	// ClassBulk carries checkpoint and state-transfer packs. Lowest
	// priority; large payloads are chunked on the wire so protocol
	// frames interleave, and reassembled transparently by the receiver.
	ClassBulk

	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassProtocol:
		return "protocol"
	case ClassRequest:
		return "request"
	case ClassBulk:
		return "bulk"
	}
	return "invalid"
}

// Inbound is a received message with its authenticated sender identity.
// The transport guarantees From is genuine (in-process: enforced by the
// hub; TCP: verified by per-pair MAC), which is the no-impersonation
// assumption of the model (§2.1).
type Inbound struct {
	From    string
	Payload []byte
}

// Transport is an asynchronous, authenticated point-to-point channel
// bundle for one node.
//
// Sends are best-effort and non-blocking beyond queue admission: the
// network may drop or delay messages arbitrarily (asynchronous system
// model); protocols must retransmit. Send takes ownership of the
// payload — the caller must not mutate the buffer afterwards
// (implementations may hand it to receivers, or keep it queued, without
// copying). Inbox delivers received messages until Close; receivers
// must treat payloads as read-only.
type Transport interface {
	// Self returns this node's identity.
	Self() string
	// Send queues payload for delivery to the named peer on the
	// protocol lane; Send(to, p) ≡ SendClass(to, p, ClassProtocol).
	Send(to string, payload []byte) error
	// SendClass queues payload on the given priority lane. Lanes are
	// FIFO internally but drain strictly by class; see Class. A full
	// lane reports ErrBackpressure (see its contract for which lanes
	// still deliver).
	SendClass(to string, payload []byte, class Class) error
	// Inbox returns the channel of received messages. After Close no
	// further messages are delivered; consumers must also watch their
	// own stop signal rather than rely on the channel closing.
	Inbox() <-chan Inbound
	// Close releases resources and closes the inbox.
	Close() error
}
