package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Network is an in-process simulated network hub. Endpoints register by
// identity; the hub routes messages between them, applying per-link
// fault injection: drop probability, fixed delay, and partitions. It is
// the deterministic substrate for the Byzantine-replica experiments.
type Network struct {
	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[string]*Endpoint
	links     map[[2]string]linkConfig
	queues    map[[2]string]chan delayed // per-link FIFO delivery for delayed links
	parts     map[string]int             // identity → partition id (0 = default)
	wg        sync.WaitGroup
	done      chan struct{}
	closed    bool
}

// delayed is one message queued on a delayed link, due at `at`.
type delayed struct {
	at  time.Time
	dst *Endpoint
	msg Inbound
}

type linkConfig struct {
	dropRate float64
	delay    time.Duration
}

// NewNetwork returns a hub whose fault injection draws from the given
// seed, so failure schedules are reproducible.
func NewNetwork(seed int64) *Network {
	return &Network{
		rng:       rand.New(rand.NewSource(seed)),
		endpoints: make(map[string]*Endpoint),
		links:     make(map[[2]string]linkConfig),
		queues:    make(map[[2]string]chan delayed),
		parts:     make(map[string]int),
		done:      make(chan struct{}),
	}
}

// Endpoint registers (or returns) the endpoint for identity id.
func (n *Network) Endpoint(id string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok {
		return ep
	}
	ep := &Endpoint{
		net:   n,
		id:    id,
		inbox: make(chan Inbound, inboxDepth),
		done:  make(chan struct{}),
	}
	n.endpoints[id] = ep
	return ep
}

// inboxDepth bounds each endpoint's queue. The asynchronous model
// permits message loss, so overflow degrades to a drop rather than
// blocking the sender — protocols retransmit.
const inboxDepth = 4096

// SetLink configures fault injection for the directed link from → to.
// dropRate ∈ [0,1] is the probability a message is silently lost;
// delay postpones delivery of surviving messages.
func (n *Network) SetLink(from, to string, dropRate float64, delay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]string{from, to}] = linkConfig{dropRate: dropRate, delay: delay}
}

// SetNodeFaults applies the drop/delay configuration to every link into
// and out of the node.
func (n *Network) SetNodeFaults(id string, dropRate float64, delay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.endpoints {
		if other == id {
			continue
		}
		n.links[[2]string{id, other}] = linkConfig{dropRate: dropRate, delay: delay}
		n.links[[2]string{other, id}] = linkConfig{dropRate: dropRate, delay: delay}
	}
}

// Partition places each listed group of identities in its own partition;
// messages only flow within a partition. Unlisted nodes stay in
// partition 0. Heal with HealPartitions.
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts = make(map[string]int)
	for g, ids := range groups {
		for _, id := range ids {
			n.parts[id] = g + 1
		}
	}
}

// HealPartitions reconnects all partitions.
func (n *Network) HealPartitions() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts = make(map[string]int)
}

// Close shuts down every endpoint and waits for in-flight deliveries.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.done)
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.closeLocal()
	}
	n.wg.Wait()
}

// route delivers payload from → to, applying fault injection. Called
// with n.mu NOT held.
func (n *Network) route(from, to string, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	if n.parts[from] != n.parts[to] {
		n.mu.Unlock()
		return nil // partitioned: silently dropped
	}
	cfg := n.links[[2]string{from, to}]
	if cfg.dropRate > 0 && n.rng.Float64() < cfg.dropRate {
		n.mu.Unlock()
		return nil // dropped
	}
	// Ownership transfer: the payload is handed to receivers as-is.
	// Senders must not mutate a buffer after Send — the protocol layer
	// marshals a fresh buffer per message, and receivers treat payloads
	// as read-only, so the per-receiver defensive copy that used to
	// live here was pure allocation overhead on the hot path.
	msg := Inbound{From: from, Payload: payload}
	if cfg.delay > 0 {
		// Delayed links are FIFO, like a real (TCP) connection with
		// latency: each directed link has one delivery queue so two
		// messages from the same sender never reorder. Per-message
		// timers would race on delivery and reorder same-link traffic,
		// which no transport this simulates does.
		key := [2]string{from, to}
		q, ok := n.queues[key]
		if !ok {
			q = make(chan delayed, inboxDepth)
			n.queues[key] = q
			n.wg.Add(1)
			go n.deliverLoop(q)
		}
		n.mu.Unlock()
		select {
		case q <- delayed{at: time.Now().Add(cfg.delay), dst: dst, msg: msg}:
		default:
			// Link queue full: drop (asynchronous model permits loss).
		}
		return nil
	}
	n.wg.Add(1)
	n.mu.Unlock()
	defer n.wg.Done()
	select {
	case dst.inbox <- msg:
	case <-dst.done:
	default:
		// Inbox full: drop (asynchronous model permits loss).
	}
	return nil
}

// deliverLoop drains one delayed link's queue in order, waiting out
// each message's remaining delay before handing it to the inbox.
func (n *Network) deliverLoop(q chan delayed) {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case d := <-q:
			if wait := time.Until(d.at); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-n.done:
					t.Stop()
					return
				}
			}
			select {
			case d.dst.inbox <- d.msg:
			case <-d.dst.done:
			default:
				// Inbox full: drop (asynchronous model permits loss).
			}
		}
	}
}

// Endpoint is one node's attachment to a Network.
type Endpoint struct {
	net       *Network
	id        string
	inbox     chan Inbound
	closeOnce sync.Once
	done      chan struct{}
}

var _ Transport = (*Endpoint)(nil)

// Self implements Transport.
func (e *Endpoint) Self() string { return e.id }

// Send implements Transport.
func (e *Endpoint) Send(to string, payload []byte) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	return e.net.route(e.id, to, payload)
}

// SendClass implements Transport. The simulated network has infinite
// bandwidth per hub tick, so priority lanes and backpressure are
// meaningless here: every class routes identically.
func (e *Endpoint) SendClass(to string, payload []byte, _ Class) error {
	return e.Send(to, payload)
}

// Inbox implements Transport.
func (e *Endpoint) Inbox() <-chan Inbound { return e.inbox }

// Close implements Transport.
func (e *Endpoint) Close() error {
	e.closeLocal()
	return nil
}

func (e *Endpoint) closeLocal() {
	e.closeOnce.Do(func() {
		close(e.done)
	})
}
