package transport

import (
	"peats/internal/metrics"
)

// EnableMetrics registers the TCP transport's metric series. The load
// counters the transport already keeps (frames, writes, bytes, drops,
// backpressure, dials) are exposed as scrape-time counter functions
// over the same atomics; queue-depth gauges walk the peer lanes under
// their own locks. The only new hot-path cost is one histogram
// observation per coalesced write. A nil registry is a no-op.
func (t *TCP) EnableMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	if reg == nil {
		return
	}
	t.mFramesPerWrite = reg.Histogram("peats_transport_frames_per_write",
		"Frames coalesced into one write(2).", metrics.SizeBuckets, labels...)

	reg.CounterFunc("peats_transport_frames_sent_total",
		"Frames sealed and written to peer connections.",
		func() float64 { return float64(t.stats.framesSent.Load()) }, labels...)
	reg.CounterFunc("peats_transport_writes_total",
		"write(2) calls issued by the peer writers.",
		func() float64 { return float64(t.stats.writes.Load()) }, labels...)
	reg.CounterFunc("peats_transport_bytes_sent_total",
		"Wire bytes written to peer connections.",
		func() float64 { return float64(t.stats.bytesSent.Load()) }, labels...)
	reg.CounterFunc("peats_transport_frames_received_total",
		"MAC-verified inbound frames (bulk chunks count individually).",
		func() float64 { return float64(t.stats.framesRecv.Load()) }, labels...)
	reg.CounterFunc("peats_transport_proto_dropped_total",
		"Protocol-lane frames dropped oldest-first on overflow.",
		func() float64 { return float64(t.stats.protoDropped.Load()) }, labels...)
	reg.CounterFunc("peats_transport_backpressure_total",
		"Sends rejected (or degraded) with ErrBackpressure.",
		func() float64 { return float64(t.stats.backpressure.Load()) }, labels...)
	reg.CounterFunc("peats_transport_dials_total",
		"Outbound dial attempts, successful or not (redials included).",
		func() float64 { return float64(t.stats.dials.Load()) }, labels...)

	reg.GaugeFunc("peats_transport_connections",
		"Live connections (peer-pinned plus inbound).",
		func() float64 { return float64(t.Stats().Conns) }, labels...)
	for class := Class(0); class < numClasses; class++ {
		class := class
		laneLabels := append(append([]metrics.Label(nil), labels...),
			metrics.L("lane", class.String()))
		reg.GaugeFunc("peats_transport_queue_depth",
			"Frames queued in one priority lane across all peers.",
			func() float64 { return float64(t.queueDepth(class)) }, laneLabels...)
	}
}

// queueDepth sums one lane's queued frames across every peer. Scrape
// path only: it takes each peer's lock briefly, never the writer's
// coalescing path.
func (t *TCP) queueDepth(class Class) int {
	t.mu.Lock()
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	n := 0
	for _, p := range peers {
		p.mu.Lock()
		n += len(p.lanes[class])
		p.mu.Unlock()
	}
	return n
}
