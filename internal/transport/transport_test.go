package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"peats/internal/auth"
)

func recvWithin(t *testing.T, tr Transport, d time.Duration) Inbound {
	t.Helper()
	select {
	case m := <-tr.Inbox():
		return m
	case <-time.After(d):
		t.Fatal("no message within deadline")
		return Inbound{}
	}
}

func expectSilence(t *testing.T, tr Transport, d time.Duration) {
	t.Helper()
	select {
	case m := <-tr.Inbox():
		t.Fatalf("unexpected message from %s: %q", m.From, m.Payload)
	case <-time.After(d):
	}
}

func TestInprocDelivery(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, b := n.Endpoint("a"), n.Endpoint("b")

	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m := recvWithin(t, b, time.Second)
	if m.From != "a" || string(m.Payload) != "hello" {
		t.Errorf("got %+v", m)
	}
}

func TestInprocSenderIdentityIsAuthentic(t *testing.T) {
	// The hub stamps the real sender; an endpoint has no way to claim
	// another identity (Send takes no "from").
	n := NewNetwork(1)
	defer n.Close()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	_ = a.Send("b", []byte("x"))
	if m := recvWithin(t, b, time.Second); m.From != "a" {
		t.Errorf("From = %q", m.From)
	}
}

func TestInprocUnknownPeer(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := n.Endpoint("a")
	if err := a.Send("ghost", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestInprocPayloadOwnershipTransfer(t *testing.T) {
	// Send transfers ownership of the payload to the network: the same
	// buffer may be fanned out to several receivers without copying, so
	// a sender must not mutate it afterwards. Protocol code marshals a
	// fresh buffer per message.
	n := NewNetwork(1)
	defer n.Close()
	a, b, c := n.Endpoint("a"), n.Endpoint("b"), n.Endpoint("c")
	buf := []byte("orig")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("c", buf); err != nil {
		t.Fatal(err)
	}
	if m := recvWithin(t, b, time.Second); string(m.Payload) != "orig" {
		t.Errorf("b received %q, want \"orig\"", m.Payload)
	}
	if m := recvWithin(t, c, time.Second); string(m.Payload) != "orig" {
		t.Errorf("c received %q, want \"orig\"", m.Payload)
	}
}

func TestInprocDropRate(t *testing.T) {
	n := NewNetwork(42)
	defer n.Close()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetLink("a", "b", 1.0, 0) // drop everything a→b
	if err := a.Send("b", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	expectSilence(t, b, 50*time.Millisecond)
	// Reverse direction unaffected.
	if err := b.Send("a", []byte("back")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, a, time.Second)
}

func TestInprocDelay(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetLink("a", "b", 0, 50*time.Millisecond)
	start := time.Now()
	if err := a.Send("b", []byte("slow")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("delivered after %v, want ≥ ~50ms", elapsed)
	}
}

// A delayed link must deliver in send order — pipelined clients send
// consecutive request numbers over one link, and the at-most-once
// client table silently drops anything that arrives out of order.
func TestInprocDelayedLinkIsFIFO(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetLink("a", "b", 0, 100*time.Microsecond)
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		msg := recvWithin(t, b, time.Second)
		if got := int(msg.Payload[0]); got != i {
			t.Fatalf("message %d arrived in position %d: delayed link reordered", got, i)
		}
	}
}

func TestInprocPartition(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, b, c := n.Endpoint("a"), n.Endpoint("b"), n.Endpoint("c")

	n.Partition([]string{"a"}, []string{"b", "c"})
	if err := a.Send("b", []byte("blocked")); err != nil {
		t.Fatal(err)
	}
	expectSilence(t, b, 50*time.Millisecond)
	// Within partition works.
	if err := b.Send("c", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, c, time.Second)

	n.HealPartitions()
	if err := a.Send("b", []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if m := recvWithin(t, b, time.Second); string(m.Payload) != "healed" {
		t.Errorf("got %q", m.Payload)
	}
}

func TestInprocSetNodeFaults(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetNodeFaults("b", 1.0, 0) // b fully lossy both directions
	_ = a.Send("b", []byte("x"))
	expectSilence(t, b, 50*time.Millisecond)
	_ = b.Send("a", []byte("y"))
	expectSilence(t, a, 50*time.Millisecond)
}

func TestInprocClosedEndpoint(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	a := n.Endpoint("a")
	n.Endpoint("b")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func newTCPTrio(t *testing.T) (map[string]*TCP, func()) {
	t.Helper()
	ids := []string{"r0", "r1", "r2"}
	master := []byte("test-master")
	trs := make(map[string]*TCP, len(ids))
	addrs := make(map[string]string)
	for _, id := range ids {
		kr := auth.NewKeyringFromMaster(master, id, ids)
		tr, err := NewTCP(id, "127.0.0.1:0", nil, kr)
		if err != nil {
			t.Fatal(err)
		}
		trs[id] = tr
		addrs[id] = tr.Addr()
	}
	for _, tr := range trs {
		for id, addr := range addrs {
			tr.SetPeerAddr(id, addr)
		}
	}
	cleanup := func() {
		for _, tr := range trs {
			_ = tr.Close()
		}
	}
	return trs, cleanup
}

func TestTCPDeliveryAndAuth(t *testing.T) {
	trs, cleanup := newTCPTrio(t)
	defer cleanup()

	if err := trs["r0"].Send("r1", []byte("prepare")); err != nil {
		t.Fatal(err)
	}
	m := recvWithin(t, trs["r1"], 5*time.Second)
	if m.From != "r0" || string(m.Payload) != "prepare" {
		t.Errorf("got %+v", m)
	}

	// Bidirectional and multi-peer.
	if err := trs["r1"].Send("r0", []byte("ack")); err != nil {
		t.Fatal(err)
	}
	if m := recvWithin(t, trs["r0"], 5*time.Second); string(m.Payload) != "ack" {
		t.Errorf("got %q", m.Payload)
	}
	if err := trs["r2"].Send("r0", []byte("from r2")); err != nil {
		t.Fatal(err)
	}
	if m := recvWithin(t, trs["r0"], 5*time.Second); m.From != "r2" {
		t.Errorf("From = %q", m.From)
	}
}

func TestTCPRejectsForgedSender(t *testing.T) {
	// An attacker with r2's keys cannot claim to be r0: the MAC is
	// computed with the (sender, receiver) pairwise key.
	ids := []string{"r0", "r1", "r2"}
	master := []byte("m")
	kr1 := auth.NewKeyringFromMaster(master, "r1", ids)
	victim, err := NewTCP("r1", "127.0.0.1:0", nil, kr1)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()

	// "r2" builds a transport that lies about its identity: it seals
	// frames with its own key but labels them from "r0".
	kr2 := auth.NewKeyringFromMaster(master, "r2", ids)
	attacker, err := NewTCP("r2", "127.0.0.1:0", map[string]string{"r1": victim.Addr()}, kr2)
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	attacker.self = "r0" // forge the claimed identity

	if err := attacker.Send("r1", []byte("evil")); err != nil {
		t.Fatal(err)
	}
	expectSilence(t, victim, 100*time.Millisecond)
}

func TestTCPGarbageConnection(t *testing.T) {
	ids := []string{"r0", "r1"}
	kr := auth.NewKeyringFromMaster([]byte("m"), "r0", ids)
	tr, err := NewTCP("r0", "127.0.0.1:0", nil, kr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Raw garbage and oversized frames must not crash or deliver.
	conn, err := netDial(tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	_ = conn.Close()
	expectSilence(t, tr, 100*time.Millisecond)
}

func TestTCPSendToUnknown(t *testing.T) {
	kr := auth.NewKeyringFromMaster([]byte("m"), "r0", []string{"r0"})
	tr, err := NewTCP("r0", "127.0.0.1:0", nil, kr)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send("ghost", nil); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestTCPClose(t *testing.T) {
	trs, cleanup := newTCPTrio(t)
	cleanup() // close all
	if err := trs["r0"].Send("r1", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	// Double close is fine.
	if err := trs["r0"].Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestTCPManyMessagesOrdered(t *testing.T) {
	trs, cleanup := newTCPTrio(t)
	defer cleanup()
	const count = 200
	for i := 0; i < count; i++ {
		if err := trs["r0"].Send("r1", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Same-connection messages arrive in order.
	for i := 0; i < count; i++ {
		m := recvWithin(t, trs["r1"], 5*time.Second)
		if want := fmt.Sprintf("m%d", i); string(m.Payload) != want {
			t.Fatalf("message %d = %q, want %q", i, m.Payload, want)
		}
	}
}

// netDial is a tiny indirection so the garbage-connection test reads
// clearly.
func netDial(addr string) (interface {
	Write([]byte) (int, error)
	Close() error
}, error) {
	return netDialTCP(addr)
}
