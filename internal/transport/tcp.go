package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"peats/internal/auth"
	"peats/internal/wire"
)

// TCP is a Transport over TCP connections with HMAC-authenticated
// frames. Every frame carries the sender identity and a MAC computed
// with the pairwise key shared between sender and receiver, so a node
// cannot impersonate another (the model's §2.1 assumption); frames that
// fail verification are dropped silently.
//
// Connections are dialled lazily and re-dialled after failures; loss
// during reconnection is acceptable because the protocols above assume
// an asynchronous, lossy network and retransmit.
type TCP struct {
	self  string
	kr    *auth.Keyring
	ln    net.Listener
	inbox chan Inbound

	mu      sync.Mutex
	addrs   map[string]string
	conns   map[string]net.Conn
	inbound map[net.Conn]struct{}
	closed  bool

	wg   sync.WaitGroup
	done chan struct{}
}

var _ Transport = (*TCP)(nil)

// maxFrame bounds accepted frame sizes (16 MiB) so a malicious peer
// cannot force unbounded allocations.
const maxFrame = 16 << 20

// NewTCP starts a TCP transport for node self listening on listenAddr.
// addrs maps peer identities to dial addresses; peers whose addresses
// are not yet known (e.g. during a rolling bring-up on ephemeral ports)
// can be added later with SetPeerAddr. kr must hold keys for all peers.
func NewTCP(self, listenAddr string, addrs map[string]string, kr *auth.Keyring) (*TCP, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	t := &TCP{
		self:    self,
		kr:      kr,
		addrs:   make(map[string]string, len(addrs)),
		ln:      ln,
		inbox:   make(chan Inbound, inboxDepth),
		conns:   make(map[string]net.Conn),
		inbound: make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	for id, a := range addrs {
		t.addrs[id] = a
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetPeerAddr registers (or updates) a peer's dial address.
func (t *TCP) SetPeerAddr(id, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[id] = addr
}

// Self implements Transport.
func (t *TCP) Self() string { return t.self }

// Inbox implements Transport.
func (t *TCP) Inbox() <-chan Inbound { return t.inbox }

// Send implements Transport. The frame is MACed for the destination.
func (t *TCP) Send(to string, payload []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	conn, ok := t.conns[to]
	t.mu.Unlock()

	if !ok {
		var err error
		conn, err = t.dial(to)
		if err != nil {
			return err
		}
	}
	frame, err := t.sealFrame(to, payload)
	if err != nil {
		return err
	}
	if err := writeFrame(conn, frame); err != nil {
		t.dropConn(to, conn)
		// One reconnection attempt; beyond that the message is lost,
		// which the asynchronous model tolerates.
		conn, derr := t.dial(to)
		if derr != nil {
			return derr
		}
		if werr := writeFrame(conn, frame); werr != nil {
			t.dropConn(to, conn)
			return fmt.Errorf("transport: send to %s: %w", to, werr)
		}
	}
	return nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	conns := make([]net.Conn, 0, len(t.conns)+len(t.inbound))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.conns = map[string]net.Conn{}
	t.inbound = map[net.Conn]struct{}{}
	t.mu.Unlock()

	_ = t.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
	return nil
}

// sealFrame encodes self → to payload with its MAC.
func (t *TCP) sealFrame(to string, payload []byte) ([]byte, error) {
	body := frameBody(t.self, to, payload)
	mac, err := t.kr.MAC(to, body)
	if err != nil {
		return nil, fmt.Errorf("transport: seal for %s: %w", to, err)
	}
	w := wire.NewWriter()
	w.String(t.self)
	w.Bytes(payload)
	w.Bytes(mac)
	return w.Data(), nil
}

// frameBody is the MACed content: direction-bound so a frame cannot be
// reflected back or replayed to a third node.
func frameBody(from, to string, payload []byte) []byte {
	w := wire.NewWriter()
	w.String(from)
	w.String(to)
	w.Bytes(payload)
	return w.Data()
}

func (t *TCP) dial(to string) (net.Conn, error) {
	t.mu.Lock()
	addr, ok := t.addrs[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", to, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		// Lost a race with another Send; reuse the established one.
		t.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	t.conns[to] = conn
	t.mu.Unlock()
	// Connections are bidirectional: the peer may reply over this very
	// connection (it cannot dial back to an ephemeral client port).
	t.wg.Add(1)
	go t.readLoop(conn)
	return conn, nil
}

func (t *TCP) dropConn(to string, conn net.Conn) {
	t.mu.Lock()
	if t.conns[to] == conn {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	_ = conn.Close()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop consumes frames from one inbound connection, verifying each
// MAC before delivery.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		for id, c := range t.conns {
			if c == conn {
				delete(t.conns, id)
			}
		}
		t.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		r := wire.NewReader(frame)
		from := r.String()
		payload := r.Bytes()
		mac := r.Bytes()
		r.ExpectEOF()
		if r.Err() != nil {
			return // malformed framing: drop the connection
		}
		if !t.kr.Verify(from, frameBody(from, t.self, payload), mac) {
			continue // forged or corrupted: drop the frame
		}
		// Remember the connection as the reverse path to the sender:
		// clients listen on ephemeral ports, so replies must flow back
		// over the connection the request arrived on.
		t.mu.Lock()
		if _, known := t.conns[from]; !known && !t.closed {
			t.conns[from] = conn
		}
		t.mu.Unlock()
		select {
		case t.inbox <- Inbound{From: from, Payload: payload}:
		case <-t.done:
			return
		}
	}
}

// writeFrame sends one length-prefixed frame in a single Write so
// concurrent writers cannot interleave header and body.
func writeFrame(conn net.Conn, frame []byte) error {
	buf := make([]byte, 4+len(frame))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(frame)))
	copy(buf[4:], frame)
	_, err := conn.Write(buf)
	return err
}

func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(conn, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
