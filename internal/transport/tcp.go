package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"peats/internal/auth"
	"peats/internal/metrics"
	"peats/internal/wire"
)

// TCP is a Transport over TCP connections with HMAC-authenticated
// frames. Every frame carries the sender identity and a MAC computed
// with the pairwise key shared between sender and receiver, so a node
// cannot impersonate another (the model's §2.1 assumption); frames that
// fail verification are dropped silently.
//
// The transport is built for connection-scale load, not just
// correctness:
//
//   - Send never touches the network on the caller's goroutine. It
//     enqueues onto a bounded per-peer lane and returns; a dedicated
//     writer goroutine per peer owns the connection, including dialing
//     and jittered redial backoff, so a slow or dead peer can never
//     stall a replica's event loop.
//   - The writer drains everything queued into one sealed, coalesced
//     buffer and flushes it with a single Write, amortizing syscalls
//     and seal allocations across frames.
//   - Each peer has three priority lanes (protocol > request > bulk).
//     Protocol and request share the control connection, drained
//     strictly protocol-first; the bulk lane gets its own dedicated
//     connection, with payloads chunked on the wire (and reassembled
//     transparently by the receiver), so a multi-megabyte state pack
//     never head-of-line-blocks a vote — not even via bytes already
//     committed to the kernel socket buffer.
//   - A full request or bulk lane surfaces ErrBackpressure to the
//     caller instead of blocking or silently dropping; the protocol
//     lane drops its oldest frame (retransmittable by design) and
//     reports the congestion.
//
// Connections are dialled lazily and re-dialled after failures; loss
// during reconnection is acceptable because the protocols above assume
// an asynchronous, lossy network and retransmit. When two peers dial
// each other simultaneously, both sides deterministically converge on
// the connection dialed by the lexicographically lower identity.
type TCP struct {
	self string
	kr   *auth.Keyring
	ln   net.Listener
	cfg  TCPConfig

	inbox chan Inbound

	mu      sync.Mutex
	addrs   map[string]string
	peers   map[string]*tcpPeer
	inbound map[net.Conn]struct{}
	closed  bool

	asmMu sync.Mutex
	asm   map[string]*assembly // per-peer bulk reassembly state

	stats tcpCounters

	// mFramesPerWrite is the coalescing histogram, nil until
	// EnableMetrics; a nil handle no-ops.
	mFramesPerWrite *metrics.Histogram

	wg   sync.WaitGroup
	done chan struct{}
}

var _ Transport = (*TCP)(nil)

// maxFrame bounds accepted frame sizes — and reassembled bulk messages
// (16 MiB) — so a malicious peer cannot force unbounded allocations.
const maxFrame = 16 << 20

// smallFrame is the threshold under which inbound frames are read into
// a per-connection scratch buffer (payloads are copied out on
// delivery); larger frames get a dedicated allocation whose payload is
// delivered without copying.
const smallFrame = 64 << 10

// maxCoalesce is the default CoalesceBytes: how many bytes one writer
// flush seals before it issues the Write — bounding both the flush
// buffer and the time a just-arrived protocol frame waits behind an
// in-progress flush.
const maxCoalesce = 256 << 10

// arenaBlock is the allocation unit for small-frame delivery copies;
// it must be at least smallFrame so any small payload fits one block.
const arenaBlock = 128 << 10

// maxRetainedFlush is the largest flush buffer a writer keeps across
// flushes; anything bigger (a bulk burst) is released to the GC.
const maxRetainedFlush = 1 << 20

// bulkSockBuf caps the bulk connection's kernel send buffer. A pack
// drain then runs under flow control — the bulk writer parks in the
// poller whenever a couple of chunks are in flight — instead of staying
// runnable with megabytes queued in the kernel. That bounds how far
// ahead of the receiver the stream can run, and keeps the scheduler
// reaching its network poll so latency-sensitive wakeups (votes on the
// control connection) are never starved behind a busy bulk drain.
const bulkSockBuf = 128 << 10

// chunkPollWindow is how long the bulk readLoop parks after each chunk
// so the runtime's network poller is guaranteed to run during a pack
// drain (see the kindChunk case in readLoop).
const chunkPollWindow = 100 * time.Microsecond

// frame kinds on the wire.
const (
	kindMsg     = 0 // self-contained protocol/request message
	kindChunk   = 1 // one chunk of a chunked bulk message
	kindBulkMsg = 2 // self-contained bulk message (fits one chunk)
)

// TCPConfig tunes the per-peer send queues. The zero value selects the
// defaults noted on each field.
type TCPConfig struct {
	// ProtocolDepth bounds the protocol lane, in frames (default 4096).
	// Overflow drops the oldest queued frame and reports
	// ErrBackpressure while still admitting the new one.
	ProtocolDepth int
	// RequestDepth bounds the request lane, in frames (default 1024).
	// Overflow rejects the send with ErrBackpressure.
	RequestDepth int
	// BulkDepth bounds the bulk lane, in chunks (default 256). A bulk
	// message is admitted whole or not at all; rejection reports
	// ErrBackpressure.
	BulkDepth int
	// BulkChunk is the chunk size bulk payloads are split into on the
	// wire (default 64 KiB). Chunks travel on the peer's dedicated bulk
	// connection, so a multi-megabyte state pack never queues ahead of a
	// protocol frame; the receiver reassembles the stream transparently.
	BulkChunk int
	// DialTimeout bounds one dial attempt (default 5s).
	DialTimeout time.Duration
	// CoalesceBytes caps how many payload bytes one writer flush seals
	// before issuing the Write (default 256 KiB) — bounding both the
	// flush buffer and how long a just-arrived vote waits behind an
	// in-progress flush.
	CoalesceBytes int
	// RedialBackoff is the initial delay between failed dials (default
	// 50ms); it doubles per consecutive failure up to RedialBackoffMax
	// (default 2s), with ±50% jitter so a rebooted group does not dial
	// in lockstep.
	RedialBackoff    time.Duration
	RedialBackoffMax time.Duration
	// NoCoalesce makes the writer seal and Write every frame
	// individually, with fresh buffers per frame — the behaviour the
	// coalescing path replaced. Benchmarks only.
	NoCoalesce bool
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.ProtocolDepth <= 0 {
		c.ProtocolDepth = 4096
	}
	if c.RequestDepth <= 0 {
		c.RequestDepth = 1024
	}
	if c.BulkDepth <= 0 {
		c.BulkDepth = 256
	}
	if c.BulkChunk <= 0 {
		c.BulkChunk = 64 << 10
	}
	if c.BulkChunk > maxFrame {
		c.BulkChunk = maxFrame
	}
	if c.CoalesceBytes <= 0 {
		c.CoalesceBytes = maxCoalesce
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 50 * time.Millisecond
	}
	if c.RedialBackoffMax < c.RedialBackoff {
		c.RedialBackoffMax = 2 * time.Second
	}
	return c
}

// tcpCounters are the transport's atomic load counters.
type tcpCounters struct {
	framesSent   atomic.Uint64
	writes       atomic.Uint64
	bytesSent    atomic.Uint64
	framesRecv   atomic.Uint64
	protoDropped atomic.Uint64
	backpressure atomic.Uint64
	dials        atomic.Uint64
}

// TCPStats is a snapshot of the transport's load counters.
type TCPStats struct {
	// FramesSent / Writes is the coalescing ratio: frames per write(2).
	FramesSent uint64
	Writes     uint64
	BytesSent  uint64
	// FramesReceived counts MAC-verified inbound frames (chunks count
	// individually).
	FramesReceived uint64
	// ProtoDropped counts protocol-lane frames dropped oldest-first on
	// overflow.
	ProtoDropped uint64
	// Backpressure counts sends that reported ErrBackpressure.
	Backpressure uint64
	// Dials counts completed outbound dial attempts (successful or not).
	Dials uint64
	// Conns is the number of live connections (peer-pinned + inbound).
	Conns int
}

// Stats returns a snapshot of the transport's load counters.
func (t *TCP) Stats() TCPStats {
	s := TCPStats{
		FramesSent:     t.stats.framesSent.Load(),
		Writes:         t.stats.writes.Load(),
		BytesSent:      t.stats.bytesSent.Load(),
		FramesReceived: t.stats.framesRecv.Load(),
		ProtoDropped:   t.stats.protoDropped.Load(),
		Backpressure:   t.stats.backpressure.Load(),
		Dials:          t.stats.dials.Load(),
	}
	seen := make(map[net.Conn]struct{})
	t.mu.Lock()
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	for c := range t.inbound {
		seen[c] = struct{}{}
	}
	t.mu.Unlock()
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			seen[p.conn] = struct{}{}
		}
		if p.bulkConn != nil {
			seen[p.bulkConn] = struct{}{}
		}
		p.mu.Unlock()
	}
	s.Conns = len(seen)
	return s
}

// NewTCP starts a TCP transport for node self listening on listenAddr
// with default queue configuration. addrs maps peer identities to dial
// addresses; peers whose addresses are not yet known (e.g. during a
// rolling bring-up on ephemeral ports) can be added later with
// SetPeerAddr. kr must hold keys for all peers.
func NewTCP(self, listenAddr string, addrs map[string]string, kr *auth.Keyring) (*TCP, error) {
	return NewTCPWithConfig(self, listenAddr, addrs, kr, TCPConfig{})
}

// NewTCPWithConfig starts a TCP transport with explicit queue tuning.
func NewTCPWithConfig(self, listenAddr string, addrs map[string]string, kr *auth.Keyring, cfg TCPConfig) (*TCP, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	t := &TCP{
		self:    self,
		kr:      kr,
		cfg:     cfg.withDefaults(),
		addrs:   make(map[string]string, len(addrs)),
		ln:      ln,
		inbox:   make(chan Inbound, inboxDepth),
		peers:   make(map[string]*tcpPeer),
		inbound: make(map[net.Conn]struct{}),
		asm:     make(map[string]*assembly),
		done:    make(chan struct{}),
	}
	for id, a := range addrs {
		t.addrs[id] = a
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport's bound listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetPeerAddr registers (or updates) a peer's dial address.
func (t *TCP) SetPeerAddr(id, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs[id] = addr
}

// Self implements Transport.
func (t *TCP) Self() string { return t.self }

// Inbox implements Transport.
func (t *TCP) Inbox() <-chan Inbound { return t.inbox }

// Send implements Transport: a protocol-lane SendClass.
func (t *TCP) Send(to string, payload []byte) error {
	return t.SendClass(to, payload, ClassProtocol)
}

// SendClass implements Transport. The call only admits the payload to
// the peer's lane — sealing, framing and the network all happen on the
// peer's writer goroutine, so the caller never blocks on a slow link.
func (t *TCP) SendClass(to string, payload []byte, class Class) error {
	if class >= numClasses {
		return fmt.Errorf("transport: invalid class %d", class)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	p := t.peers[to]
	if p == nil {
		if _, known := t.addrs[to]; !known {
			t.mu.Unlock()
			return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
		}
		p = t.newPeerLocked(to)
	}
	t.mu.Unlock()
	return p.enqueue(payload, class)
}

// newPeerLocked creates the send-side state and writer goroutines for
// a peer. Caller holds t.mu.
func (t *TCP) newPeerLocked(id string) *tcpPeer {
	p := &tcpPeer{t: t, id: id}
	p.condCtl = sync.NewCond(&p.mu)
	p.condBulk = sync.NewCond(&p.mu)
	t.peers[id] = p
	t.wg.Add(2)
	go p.writeLoop(false)
	go p.writeLoop(true)
	return p
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	conns := make([]net.Conn, 0, len(t.peers)+len(t.inbound))
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.inbound = map[net.Conn]struct{}{}
	t.mu.Unlock()

	_ = t.ln.Close()
	for _, p := range peers {
		p.mu.Lock()
		p.closed = true
		if p.conn != nil {
			conns = append(conns, p.conn)
			p.conn = nil
		}
		if p.bulkConn != nil {
			conns = append(conns, p.bulkConn)
			p.bulkConn = nil
		}
		p.condCtl.Broadcast()
		p.condBulk.Broadcast()
		p.mu.Unlock()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
	return nil
}

// ---- Per-peer send queues and writer ----

// outFrame is one queued outbound frame. Chunk frames alias subranges
// of the original bulk payload — Send's ownership-transfer contract
// makes that safe.
type outFrame struct {
	payload []byte
	kind    uint8
	stream  uint64
	index   uint32
	total   uint32
}

// tcpPeer owns everything about one peer's outbound path: the three
// priority lanes and the two connections they drain into.
//
// Protocol and request frames share the control connection (the one
// the dial tie-break pins), drained strictly protocol-first by the
// control writer. Bulk frames get a SEPARATE, self-dialed connection
// and their own writer: priority lanes alone cannot stop a state pack
// from delaying a vote once its bytes sit in the kernel socket buffer
// ahead of it, so bulk bytes must never enter the control socket at
// all. The bulk connection is dialed lazily (peers that never ship
// state packs never open it) and is send-only for its dialer.
type tcpPeer struct {
	t  *TCP
	id string

	mu         sync.Mutex
	condCtl    *sync.Cond // wakes the control writer (protocol+request)
	condBulk   *sync.Cond // wakes the bulk writer
	lanes      [numClasses][]outFrame
	conn       net.Conn // control connection (tie-break managed)
	connDialed bool     // conn was dialed by us (tie-break bookkeeping)
	bulkConn   net.Conn // dedicated bulk connection (always self-dialed)
	nextStream uint64
	closed     bool
}

// enqueue admits payload to the class lane, applying the lane's
// overflow policy. It never blocks beyond the lane mutex.
func (p *tcpPeer) enqueue(payload []byte, class Class) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	var pressured bool
	switch class {
	case ClassProtocol:
		lane := p.lanes[class]
		if len(lane) >= p.t.cfg.ProtocolDepth {
			// Drop-oldest: protocol traffic is retransmitted by the
			// repair machinery, and fresher votes supersede stale ones.
			lane = lane[1:]
			p.t.stats.protoDropped.Add(1)
			pressured = true
		}
		p.lanes[class] = append(lane, outFrame{payload: payload, kind: kindMsg})
	case ClassRequest:
		if len(p.lanes[class]) >= p.t.cfg.RequestDepth {
			p.t.stats.backpressure.Add(1)
			return ErrBackpressure
		}
		p.lanes[class] = append(p.lanes[class], outFrame{payload: payload, kind: kindMsg})
	case ClassBulk:
		chunk := p.t.cfg.BulkChunk
		n := (len(payload) + chunk - 1) / chunk
		if n <= 1 {
			n = 1
		}
		if len(p.lanes[class])+n > p.t.cfg.BulkDepth {
			// Whole-message admission: a half-queued pack is useless to
			// the receiver and would poison stream reassembly.
			p.t.stats.backpressure.Add(1)
			return ErrBackpressure
		}
		if n == 1 {
			p.lanes[class] = append(p.lanes[class], outFrame{payload: payload, kind: kindBulkMsg})
		} else {
			stream := p.nextStream
			p.nextStream++
			for i := 0; i < n; i++ {
				lo, hi := i*chunk, (i+1)*chunk
				if hi > len(payload) {
					hi = len(payload)
				}
				p.lanes[class] = append(p.lanes[class], outFrame{
					payload: payload[lo:hi],
					kind:    kindChunk,
					stream:  stream,
					index:   uint32(i),
					total:   uint32(n),
				})
			}
		}
	}
	if class == ClassBulk {
		p.condBulk.Signal()
	} else {
		p.condCtl.Signal()
	}
	if pressured {
		p.t.stats.backpressure.Add(1)
		return ErrBackpressure
	}
	return nil
}

// takeBatch blocks until the writer's lanes hold frames (or the peer
// closes, when it returns nil) and pops the next coalescing batch —
// the control writer drains protocol strictly before request, the bulk
// writer drains the bulk lane — bounded by CoalesceBytes so one flush
// can neither grow without limit nor starve a vote arriving behind a
// request burst.
func (p *tcpPeer) takeBatch(bulk bool, batch []outFrame) []outFrame {
	lo, hi, cond := int(ClassProtocol), int(ClassRequest), p.condCtl
	if bulk {
		lo, hi, cond = int(ClassBulk), int(ClassBulk), p.condBulk
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil
		}
		queued := false
		for class := lo; class <= hi; class++ {
			if len(p.lanes[class]) > 0 {
				queued = true
				break
			}
		}
		if queued {
			break
		}
		cond.Wait()
	}
	batch = batch[:0]
	budget := p.t.cfg.CoalesceBytes
	if bulk {
		// Bulk frames are pre-chunked to write granularity, so coalescing
		// them saves no syscalls worth having — it only lengthens the
		// uninterruptible seal+write burst, which on small machines is
		// exactly the latency the dedicated bulk lane exists to avoid.
		// One chunk per flush keeps each burst bounded by BulkChunk.
		budget = 1
	}
	for class := lo; class <= hi && budget > 0; class++ {
		lane := p.lanes[class]
		took := 0
		for _, f := range lane {
			if budget <= 0 {
				break
			}
			batch = append(batch, f)
			budget -= len(f.payload) + 64 // rough per-frame overhead
			took++
		}
		if took == len(lane) {
			p.lanes[class] = lane[:0] // keep the backing array
		} else if took > 0 {
			p.lanes[class] = lane[took:]
		}
	}
	return batch
}

// writeLoop is one of the peer's two dedicated writers (control or
// bulk): it owns dialing its connection (with jittered redial
// backoff), seals every queued frame into one reused buffer, and
// flushes the batch with a single Write — the coalescing that
// amortizes syscalls and allocations across frames.
func (p *tcpPeer) writeLoop(bulk bool) {
	defer p.t.wg.Done()
	var (
		batch []outFrame
		flush []byte // coalesced wire bytes, reused across flushes
		body  []byte // MAC input scratch, reused across frames
	)
	for {
		batch = p.takeBatch(bulk, batch)
		if batch == nil {
			return
		}
		conn := p.ensureConn(bulk)
		if conn == nil {
			if p.isClosed() {
				return
			}
			continue // unroutable: the batch is dropped (lossy model)
		}
		if p.t.cfg.NoCoalesce {
			// Benchmark baseline: the write path coalescing replaced —
			// fresh seal and MAC-scratch buffers plus one write(2) per
			// frame, no reuse across frames.
			for _, f := range batch {
				frame, _ := p.t.appendFrame(nil, nil, p.id, f)
				conn = p.writeAll(bulk, conn, frame, 1)
				if conn == nil {
					break
				}
			}
			continue
		}
		flush = flush[:0]
		for _, f := range batch {
			flush, body = p.t.appendFrame(flush, body, p.id, f)
		}
		p.writeAll(bulk, conn, flush, len(batch))
		if cap(flush) > maxRetainedFlush {
			flush = nil
		}
		if bulk {
			// Park between chunks — a sleep, not a Gosched. Go has no
			// goroutine priorities, and a socket write that finds buffer
			// space is a fast-path syscall that keeps the processor; a
			// merely-yielding bulk writer draining a pack into empty
			// socket buffers stays runnable for hundreds of microseconds
			// straight, and on a single-proc runtime the scheduler then
			// never reaches its network poll, stalling control-connection
			// wakeups for exactly the interval the bulk lane exists to
			// protect. Parking on a timer forces the idle moment that
			// lets the poller run; the cost is a per-peer bulk send
			// ceiling of BulkChunk/chunkPollWindow (~500 MB/s at the
			// defaults), far above any state-transfer need.
			time.Sleep(chunkPollWindow)
		}
	}
}

// writeAll issues one coalesced Write, retrying once over a fresh
// connection on failure (beyond that the frames are lost, which the
// asynchronous model tolerates). It returns the connection that took
// the bytes, or nil.
func (p *tcpPeer) writeAll(bulk bool, conn net.Conn, flush []byte, frames int) net.Conn {
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := conn.Write(flush); err == nil {
			p.t.stats.framesSent.Add(uint64(frames))
			p.t.stats.writes.Add(1)
			p.t.stats.bytesSent.Add(uint64(len(flush)))
			p.t.mFramesPerWrite.Observe(float64(frames))
			return conn
		}
		p.dropConn(bulk, conn)
		if attempt == 0 {
			if conn = p.ensureConn(bulk); conn != nil {
				continue
			}
		}
		break
	}
	return nil
}

func (p *tcpPeer) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// ensureConn returns the writer's connection, dialing it if needed.
// Dial failures back off exponentially with jitter; the loop exits
// when a connection lands (for the control writer, possibly adopted
// from an inbound dial by the peer), the peer becomes unroutable, or
// the transport closes.
func (p *tcpPeer) ensureConn(bulk bool) net.Conn {
	backoff := p.t.cfg.RedialBackoff
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil
		}
		c := p.conn
		if bulk {
			c = p.bulkConn
		}
		if c != nil {
			p.mu.Unlock()
			return c
		}
		p.mu.Unlock()

		p.t.mu.Lock()
		addr, known := p.t.addrs[p.id]
		closed := p.t.closed
		p.t.mu.Unlock()
		if closed || !known {
			// No dial route (an ephemeral client that went away, or
			// shutdown): the caller drops the batch.
			return nil
		}
		conn, err := net.DialTimeout("tcp", addr, p.t.cfg.DialTimeout)
		p.t.stats.dials.Add(1)
		if err == nil {
			if bulk {
				// The bulk connection is ours alone: no tie-break, no
				// reverse path, nothing to read.
				if tc, ok := conn.(*net.TCPConn); ok {
					_ = tc.SetWriteBuffer(bulkSockBuf)
				}
				p.mu.Lock()
				if p.closed {
					p.mu.Unlock()
					_ = conn.Close()
					return nil
				}
				if p.bulkConn == nil {
					p.bulkConn = conn
				} else {
					_ = conn.Close()
					conn = p.bulkConn
				}
				p.mu.Unlock()
				return conn
			}
			if kept := p.t.registerConn(p.id, conn, true); kept != nil {
				return kept
			}
			return nil // transport closed underneath us
		}
		// Jittered exponential backoff: ±50% around the nominal delay.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		select {
		case <-time.After(d):
		case <-p.t.done:
			return nil
		}
		if backoff *= 2; backoff > p.t.cfg.RedialBackoffMax {
			backoff = p.t.cfg.RedialBackoffMax
		}
	}
}

// appendFrame seals one frame for peer `to` and appends its
// length-prefixed wire form to flush, reusing body as the MAC-input
// scratch. Both buffers grow once and are then reused for the life of
// the writer — the per-frame allocations of the old writeFrame path
// (frame buffer, MAC sum, length-prefix copy) are all gone.
func (t *TCP) appendFrame(flush, body []byte, to string, f outFrame) ([]byte, []byte) {
	start := len(flush)
	flush = append(flush, 0, 0, 0, 0) // length prefix, patched below

	flush = appendWireString(flush, t.self)
	flush = append(flush, f.kind)
	if f.kind == kindChunk {
		flush = binary.AppendUvarint(flush, f.stream)
		flush = binary.AppendUvarint(flush, uint64(f.index))
		flush = binary.AppendUvarint(flush, uint64(f.total))
	}
	flush = appendWireBytes(flush, f.payload)

	body = appendFrameBody(body[:0], t.self, to, f.kind, f.stream, f.index, f.total, f.payload)
	// The MAC is summed straight into the flush buffer — length prefix
	// first (HMAC-SHA256 sums are a fixed 32 bytes), removing the last
	// per-frame allocation in the seal path.
	const macLen = 32
	flush = binary.AppendUvarint(flush, macLen)
	pre := len(flush)
	flush, err := t.kr.AppendMAC(to, flush, body)
	if err != nil || len(flush)-pre != macLen {
		// No pairwise key: unsendable. Truncate the partial frame.
		return flush[:start], body
	}
	binary.BigEndian.PutUint32(flush[start:start+4], uint32(len(flush)-start-4))
	return flush, body
}

// appendFrameBody builds the MACed content: direction-bound (from, to)
// so a frame cannot be reflected or replayed to a third node, and
// covering the chunk header so chunk sequencing cannot be forged.
func appendFrameBody(dst []byte, from, to string, kind uint8, stream uint64, index, total uint32, payload []byte) []byte {
	dst = appendWireString(dst, from)
	dst = appendWireString(dst, to)
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, stream)
	dst = binary.AppendUvarint(dst, uint64(index))
	dst = binary.AppendUvarint(dst, uint64(total))
	dst = appendWireBytes(dst, payload)
	return dst
}

func appendWireString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendWireBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// ---- Connection management ----

// registerConn pins conn as the peer's connection, resolving the
// simultaneous-dial race deterministically: the canonical connection
// for a pair is the one dialed by the lexicographically LOWER identity,
// so both sides converge on a single connection instead of pinning one
// each. It returns the connection the peer is pinned to afterwards
// (nil if the transport is closed). dialed says whether we dialed conn
// ourselves (as opposed to identifying an inbound connection).
func (t *TCP) registerConn(id string, conn net.Conn, dialed bool) net.Conn {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	p := t.peers[id]
	if p == nil {
		// First contact from an inbound peer (e.g. a client): create the
		// send-side state so replies have somewhere to go.
		p = t.newPeerLocked(id)
	}
	t.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		_ = conn.Close()
		return nil
	}
	old, oldDialed := p.conn, p.connDialed
	adopt := func() {
		p.conn = conn
		p.connDialed = dialed
		if old != nil {
			_ = old.Close()
		}
	}
	switch {
	case old == nil:
		adopt()
	case old == conn:
		// Already pinned.
	case dialed:
		// We dialed conn while an inbound connection from the peer was
		// already pinned. Lower dialer wins: ours iff self < id.
		if t.self < id {
			adopt()
		} else {
			_ = conn.Close()
			conn = old
		}
	default:
		// conn is inbound (dialed by the peer).
		if oldDialed && t.self < id {
			// Our dialed connection is canonical; keep reading from the
			// peer's redundant dial until the peer closes it, but never
			// write on it.
			conn = old
		} else {
			// Either the pinned conn was dialed by us and we are the
			// higher identity (the peer's dial is canonical), or the peer
			// re-dialed after a failure (newest inbound wins).
			adopt()
		}
	}
	if dialed && p.conn == conn && old != conn {
		// We own this conn and just pinned it: it doubles as the read
		// path (the peer may answer over it rather than dial back).
		t.wg.Add(1)
		go t.readLoop(conn)
	}
	return p.conn
}

// dropConn unpins a connection after a write failure.
func (p *tcpPeer) dropConn(bulk bool, conn net.Conn) {
	p.mu.Lock()
	if bulk {
		if p.bulkConn == conn {
			p.bulkConn = nil
		}
	} else if p.conn == conn {
		p.conn = nil
	}
	p.mu.Unlock()
	_ = conn.Close()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Cap kernel receive buffering (the OS would otherwise autotune
		// it to megabytes): TCP flow control then pushes congestion back
		// to the sender's lanes, where the priorities live, instead of
		// letting a bulk stream queue a pack's worth of bytes in the
		// kernel where nothing can preempt it.
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetReadBuffer(bulkSockBuf)
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// ---- Read path ----

// readLoop consumes frames from one connection, verifying each MAC
// before delivery. Small frames are read into a reused scratch buffer
// (their payloads are copied out on delivery); large frames get a
// dedicated allocation whose payload subslice is delivered as-is.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		peers := make([]*tcpPeer, 0, len(t.peers))
		for _, p := range t.peers {
			peers = append(peers, p)
		}
		t.mu.Unlock()
		for _, p := range peers {
			p.mu.Lock()
			if p.conn == conn {
				p.conn = nil
			}
			p.mu.Unlock()
		}
		_ = conn.Close()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	var (
		scratch    []byte // reused frame buffer for small frames
		body       []byte // reused MAC verification input
		arena      []byte // delivery copies carved from a shared block
		identified string // peer this conn is registered for
	)
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size > maxFrame {
			return // oversized: drop the connection
		}
		var frame []byte
		large := size > smallFrame
		if large {
			frame = make([]byte, size)
		} else {
			if cap(scratch) < int(size) {
				scratch = make([]byte, size, smallFrame)
			}
			frame = scratch[:size]
		}
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}

		r := wire.NewReader(frame)
		from := r.String()
		kind := r.Byte()
		var stream uint64
		var index, total uint32
		if kind == kindChunk {
			stream = r.Uvarint()
			index = uint32(r.Uvarint())
			total = uint32(r.Uvarint())
		}
		payload := r.BytesView()
		mac := r.BytesView()
		r.ExpectEOF()
		if r.Err() != nil || kind > kindBulkMsg {
			return // malformed framing: drop the connection
		}
		body = appendFrameBody(body[:0], from, t.self, kind, stream, index, total, payload)
		if !t.kr.Verify(from, body, mac) {
			continue // forged or corrupted: drop the frame, keep the conn
		}
		t.stats.framesRecv.Add(1)
		if kind == kindMsg && identified != from {
			// Pin the connection as the reverse path to the sender
			// (clients listen on ephemeral ports, so replies must flow
			// back over the connection the request arrived on), applying
			// the simultaneous-dial tie-break. Bulk frames never register:
			// their connection is send-only for the peer, so replies
			// written there would vanish.
			t.registerConn(from, conn, false)
			identified = from
		}
		var deliver []byte
		switch kind {
		case kindMsg, kindBulkMsg:
			if large {
				deliver = payload // dedicated allocation: hand over as-is
			} else {
				// Carve the delivery copy from a shared block so a burst
				// of small frames costs one amortized allocation, not one
				// per frame. Full-capacity slicing keeps consumers from
				// appending into a neighbour; a block stays reachable only
				// while some payload carved from it is.
				if len(arena) < len(payload) {
					arena = make([]byte, arenaBlock)
				}
				deliver = arena[:len(payload):len(payload)]
				arena = arena[len(payload):]
				copy(deliver, payload)
			}
		case kindChunk:
			deliver = t.assemble(from, stream, index, total, payload)
			if deliver == nil {
				// Incomplete (or abandoned) stream: park briefly before
				// the next chunk. A sleep, not a Gosched — a reader
				// draining a buffered pack never blocks, and on a
				// single-proc runtime a merely-yielding bulk pipeline
				// keeps the processor permanently busy, so the scheduler
				// never reaches its network poll and control-connection
				// wakeups (votes!) stall for the entire pack. Parking on
				// a timer forces an idle moment — the writer side is
				// simultaneously parked by flow control thanks to
				// bulkSockBuf — so the poller runs every chunk. The cost
				// is a ~GB/s per-peer ceiling on bulk intake, far above
				// any state-transfer need.
				time.Sleep(chunkPollWindow)
				continue
			}
		}
		select {
		case t.inbox <- Inbound{From: from, Payload: deliver}:
		case <-t.done:
			return
		}
	}
}

// assembly is the reassembly state of one peer's in-flight chunked bulk
// message. Chunks of one stream arrive in order (the bulk lane is FIFO
// and chunks of distinct messages never interleave), so a single
// expected-index cursor per peer suffices; any discontinuity — a chunk
// lost to a redial, a fresh stream starting over — abandons the old
// stream. The buffer is bounded by maxFrame like any other frame.
type assembly struct {
	stream uint64
	next   uint32
	total  uint32
	buf    []byte
}

// assemble folds one verified chunk into the peer's stream, returning
// the completed message or nil.
func (t *TCP) assemble(from string, stream uint64, index, total uint32, payload []byte) []byte {
	if total == 0 || index >= total {
		return nil
	}
	t.asmMu.Lock()
	defer t.asmMu.Unlock()
	a := t.asm[from]
	if a == nil || a.stream != stream || a.next != index || a.total != total {
		// Not the continuation we expected: abandon any partial stream.
		delete(t.asm, from)
		if index != 0 {
			return nil // mid-stream chunk of a message whose head we lost
		}
		a = &assembly{stream: stream, total: total}
		// Reserve the full message up front (chunks are uniform except
		// the last): one allocation per stream instead of append's
		// grow-and-copy cascade, which on a multi-MB pack re-copies the
		// buffer several times while the reader holds asmMu.
		if size := int(total) * len(payload); size > 0 && size <= maxFrame {
			a.buf = make([]byte, 0, size)
		}
		t.asm[from] = a
	}
	if len(a.buf)+len(payload) > maxFrame {
		delete(t.asm, from)
		return nil
	}
	a.buf = append(a.buf, payload...)
	a.next++
	if a.next < a.total {
		return nil
	}
	delete(t.asm, from)
	return a.buf
}
