package acl

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"peats/internal/policy"
)

// GroupedConsensus is a runnable strong binary consensus baseline in the
// sticky-bits-with-ACLs model, structured after the Malkhi et al.
// algorithm (§7): n = (t+1)(2t+1) processes partitioned into 2t+1
// groups of t+1, one sticky bit per group writable only by that group.
//
// Each process tries to stick its proposal into its group's bit, then
// reads all 2t+1 bits until every bit is set and decides the majority
// value. With at most t Byzantine processes, at most t groups contain a
// faulty member, so at least t+1 of the 2t+1 bits were stuck by groups
// of correct processes; the majority value is therefore backed by at
// least one correct proposer.
//
// This is a faithful-in-structure reimplementation used for the
// operation-count and memory experiments (E1/E8), not a verbatim
// transcription of the original pseudo-code (which the paper does not
// reproduce); the object counts and access pattern match the published
// costs. Termination requires all bits to become set, which holds in
// the fault-free and crash-free runs the harness measures — the
// original algorithm's extra machinery for unset bits is exactly the
// complexity the PEATS approach removes.
type GroupedConsensus struct {
	t     int
	procs []policy.ProcessID
	bits  []*StickyBit
	reads atomic.Int64
	poll  time.Duration
}

// NewGroupedConsensus builds the baseline for fault bound t. It creates
// the (t+1)(2t+1) process identities and the 2t+1 ACL-protected sticky
// bits.
func NewGroupedConsensus(t int, poll time.Duration) *GroupedConsensus {
	n := MMRTProcesses(t)
	groups := MMRTStickyBits(t)
	procs := make([]policy.ProcessID, n)
	for i := range procs {
		procs[i] = policy.ProcessID(fmt.Sprintf("q%d", i))
	}
	bits := make([]*StickyBit, groups)
	for g := range bits {
		writers := make([]policy.ProcessID, 0, t+1)
		for m := 0; m <= t; m++ {
			writers = append(writers, procs[g*(t+1)+m])
		}
		bits[g] = NewStickyBit(writers...)
	}
	if poll <= 0 {
		poll = time.Millisecond
	}
	return &GroupedConsensus{t: t, procs: procs, bits: bits, poll: poll}
}

// Procs returns the participating process identities.
func (c *GroupedConsensus) Procs() []policy.ProcessID {
	cp := make([]policy.ProcessID, len(c.procs))
	copy(cp, c.procs)
	return cp
}

// TotalOps returns the number of sticky-bit operations executed so far
// across all bits.
func (c *GroupedConsensus) TotalOps() int64 {
	var total int64
	for _, b := range c.bits {
		total += b.Ops()
	}
	return total
}

// TotalBits returns the storage bits of the consensus object.
func (c *GroupedConsensus) TotalBits() int {
	total := 0
	for _, b := range c.bits {
		total += b.BitSize()
	}
	return total
}

// Propose runs the baseline for process index i proposing v ∈ {0,1}.
func (c *GroupedConsensus) Propose(ctx context.Context, i int, v int64) (int64, error) {
	if i < 0 || i >= len(c.procs) {
		return 0, fmt.Errorf("acl consensus: process index %d out of range", i)
	}
	p := c.procs[i]
	group := i / (c.t + 1)
	if _, err := c.bits[group].Set(p, v); err != nil {
		return 0, fmt.Errorf("acl consensus: %w", err)
	}

	// Read all bits until every one is set, then take the majority.
	vals := make([]int64, len(c.bits))
	pending := make(map[int]struct{}, len(c.bits))
	for g := range c.bits {
		pending[g] = struct{}{}
	}
	for len(pending) > 0 {
		for g := range pending {
			val, set := c.bits[g].Read(p)
			if set {
				vals[g] = val
				delete(pending, g)
			}
		}
		if len(pending) == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("acl consensus: %w", ctx.Err())
		case <-time.After(c.poll):
		}
	}
	ones := int64(0)
	for _, val := range vals {
		ones += val
	}
	if int(ones) > len(c.bits)/2 {
		return 1, nil
	}
	return 0, nil
}
