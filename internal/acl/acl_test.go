package acl

import (
	"context"
	"errors"
	"math/big"
	"sync"
	"testing"
	"time"

	"peats/internal/policy"
)

func TestStickyBitSticks(t *testing.T) {
	b := NewStickyBit("p1", "p2")
	if _, set := b.Read("anyone"); set {
		t.Error("fresh bit reads as set")
	}
	ok, err := b.Set("p1", 1)
	if err != nil || !ok {
		t.Fatalf("first set: %v %v", ok, err)
	}
	// Second set with same value succeeds; different value fails.
	if ok, _ := b.Set("p2", 1); !ok {
		t.Error("same-value set failed")
	}
	if ok, _ := b.Set("p2", 0); ok {
		t.Error("bit overwritten")
	}
	if v, set := b.Read("p9"); !set || v != 1 {
		t.Errorf("read = %d %v", v, set)
	}
}

func TestStickyBitACL(t *testing.T) {
	b := NewStickyBit("p1")
	if _, err := b.Set("p2", 1); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("err = %v, want ErrAccessDenied", err)
	}
	if _, err := b.Set("p1", 7); err == nil {
		t.Error("non-binary value accepted")
	}
	// Reads are open.
	if _, set := b.Read("p2"); set {
		t.Error("unset bit reads as set")
	}
}

func TestStickyBitFirstWriterWinsUnderContention(t *testing.T) {
	b := NewStickyBit("p0", "p1")
	writers := []policy.ProcessID{"p0", "p1"}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			if _, err := b.Set(writers[i], i); err != nil {
				t.Error(err)
			}
		}(int64(i))
	}
	wg.Wait()
	v, set := b.Read("p0")
	if !set || (v != 0 && v != 1) {
		t.Fatalf("bit = %d %v", v, set)
	}
}

func TestRegisterACL(t *testing.T) {
	r := NewRegister("w")
	if err := r.Write("w", 5); err != nil {
		t.Fatal(err)
	}
	if err := r.Write("x", 9); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("err = %v, want ErrAccessDenied", err)
	}
	if got := r.Read("anyone"); got != 5 {
		t.Errorf("read = %d", got)
	}
}

func TestBaselineCostFormulas(t *testing.T) {
	// §7: MMRT uses 2t+1 sticky bits and (t+1)(2t+1) processes.
	if MMRTProcesses(4) != 45 || MMRTStickyBits(4) != 9 {
		t.Errorf("MMRT(4) = %d procs / %d bits", MMRTProcesses(4), MMRTStickyBits(4))
	}
	// Footnote 4: Alon et al. need 1,764 sticky bits at t=4, n=13.
	if got := AlonStickyBits(13, 4); got.Cmp(big.NewInt(1764)) != 0 {
		t.Errorf("AlonStickyBits(13,4) = %v, want 1764", got)
	}
	// Footnote 3: the PEATS algorithm needs 68 bits at t=4, n=13.
	if got := PEATSBits(13, 4); got != 68 {
		t.Errorf("PEATSBits(13,4) = %d, want 68", got)
	}
	// Monotonicity spot checks.
	if AlonStickyBits(4, 1).Cmp(big.NewInt(15)) != 0 { // 5·C(3,1)=15
		t.Errorf("AlonStickyBits(4,1) = %v, want 15", AlonStickyBits(4, 1))
	}
	if floorLog2(1) != 0 || floorLog2(2) != 1 || floorLog2(13) != 3 || floorLog2(16) != 4 || floorLog2(17) != 4 {
		t.Error("floorLog2 wrong")
	}
}

func TestGroupedConsensusAgreementAndValidity(t *testing.T) {
	// t=1: 6 processes, 3 bits. All propose 1 → decide 1.
	c := NewGroupedConsensus(1, 100*time.Microsecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	n := len(c.Procs())
	if n != 6 {
		t.Fatalf("n = %d, want 6", n)
	}
	decisions := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := c.Propose(ctx, i, 1)
			if err != nil {
				t.Errorf("q%d: %v", i, err)
				return
			}
			decisions[i] = d
		}(i)
	}
	wg.Wait()
	for i, d := range decisions {
		if d != 1 {
			t.Errorf("q%d decided %d, want 1", i, d)
		}
	}
}

func TestGroupedConsensusMixedAgreement(t *testing.T) {
	c := NewGroupedConsensus(1, 100*time.Microsecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n := len(c.Procs())
	decisions := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := c.Propose(ctx, i, int64(i%2))
			if err != nil {
				t.Errorf("q%d: %v", i, err)
				return
			}
			decisions[i] = d
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if decisions[i] != decisions[0] {
			t.Fatalf("disagreement: q%d=%d q0=%d", i, decisions[i], decisions[0])
		}
	}
}

func TestGroupedConsensusOpAccounting(t *testing.T) {
	c := NewGroupedConsensus(1, 100*time.Microsecond)
	ctx := context.Background()
	n := len(c.Procs())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Propose(ctx, i, 1); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	// Every process does 1 set + ≥ 2t+1 reads: ops ≥ n(2t+2).
	min := int64(n * (2*1 + 2))
	if got := c.TotalOps(); got < min {
		t.Errorf("TotalOps = %d, want ≥ %d", got, min)
	}
	if got := c.TotalBits(); got != 6 { // (2t+1) bits × 2 storage bits
		t.Errorf("TotalBits = %d, want 6", got)
	}
}

func TestGroupedConsensusBadIndex(t *testing.T) {
	c := NewGroupedConsensus(1, time.Millisecond)
	if _, err := c.Propose(context.Background(), -1, 1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := c.Propose(context.Background(), 100, 1); err == nil {
		t.Error("out-of-range index accepted")
	}
}
