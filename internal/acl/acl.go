// Package acl implements the baseline model this paper argues against:
// simple shared objects (registers, sticky bits) protected by access
// control lists, as used by Malkhi et al. and Alon et al. (§7).
//
// The package provides the objects, a strong-consensus baseline built
// from sticky bits, and the closed-form object/bit counts of the
// published algorithms, which the experiment harness compares against
// the PEATS numbers (experiments E1 and E8).
package acl

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"sync"
	"sync/atomic"

	"peats/internal/policy"
)

// ErrAccessDenied is returned when a process invokes an operation it is
// not listed for.
var ErrAccessDenied = errors.New("acl: access denied")

// StickyBit is Plotkin's sticky bit protected by a write ACL: a
// three-valued object (unset, 0, 1) whose first successful Set wins and
// persists forever. Reads are open to everyone (as in the baseline
// papers); Set is restricted to the listed writers.
type StickyBit struct {
	mu      sync.Mutex
	set     bool
	val     int64
	writers map[policy.ProcessID]struct{}
	ops     atomic.Int64
}

// NewStickyBit returns an unset sticky bit writable by the given
// processes.
func NewStickyBit(writers ...policy.ProcessID) *StickyBit {
	ws := make(map[policy.ProcessID]struct{}, len(writers))
	for _, w := range writers {
		ws[w] = struct{}{}
	}
	return &StickyBit{writers: ws}
}

// Set attempts to stick value v (0 or 1). It returns true if the bit now
// holds v (either this call stuck it or it already held v), false if a
// different value is stuck.
func (s *StickyBit) Set(p policy.ProcessID, v int64) (bool, error) {
	if v != 0 && v != 1 {
		return false, fmt.Errorf("acl: sticky bit value must be 0 or 1, got %d", v)
	}
	s.ops.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.writers[p]; !ok {
		return false, fmt.Errorf("%w: %s may not set this bit", ErrAccessDenied, p)
	}
	if !s.set {
		s.set, s.val = true, v
		return true, nil
	}
	return s.val == v, nil
}

// Read returns the bit's value and whether it has been set. -1 means
// unset.
func (s *StickyBit) Read(policy.ProcessID) (int64, bool) {
	s.ops.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.set {
		return -1, false
	}
	return s.val, true
}

// Ops returns the number of operations executed on the bit.
func (s *StickyBit) Ops() int64 { return s.ops.Load() }

// BitSize returns the storage bits of a sticky bit: two (value plus
// set flag) — the unit of the paper's memory comparison.
func (s *StickyBit) BitSize() int { return 2 }

// Register is a read/write register with a write ACL (Fig. 1's base
// object, without the value-increasing policy — ACLs cannot express it).
type Register struct {
	mu      sync.Mutex
	val     int64
	writers map[policy.ProcessID]struct{}
}

// NewRegister returns a zero register writable by the given processes.
func NewRegister(writers ...policy.ProcessID) *Register {
	ws := make(map[policy.ProcessID]struct{}, len(writers))
	for _, w := range writers {
		ws[w] = struct{}{}
	}
	return &Register{writers: ws}
}

// Write stores v if p is allowed to write.
func (r *Register) Write(p policy.ProcessID, v int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.writers[p]; !ok {
		return fmt.Errorf("%w: %s may not write", ErrAccessDenied, p)
	}
	r.val = v
	return nil
}

// Read returns the current value (reads are open).
func (r *Register) Read(policy.ProcessID) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.val
}

// ---- Closed-form costs of the published baseline algorithms ----

// MMRTProcesses returns the number of processes the Malkhi-Merritt-
// Reiter-Taubenfeld strong binary consensus algorithm requires to
// tolerate t faults: n ≥ (t+1)(2t+1) (§7).
func MMRTProcesses(t int) int { return (t + 1) * (2*t + 1) }

// MMRTStickyBits returns the number of sticky bits the MMRT algorithm
// uses: 2t+1 (§7).
func MMRTStickyBits(t int) int { return 2*t + 1 }

// AlonStickyBits returns the number of sticky bits of the Alon et al.
// optimal-resilience (n ≥ 3t+1) strong consensus algorithm:
// (n+1)·C(2t+1, t) (§5.2). The result is exact (big.Int) because the
// binomial explodes quickly.
func AlonStickyBits(n, t int) *big.Int {
	c := new(big.Int).Binomial(int64(2*t+1), int64(t))
	return c.Mul(c, big.NewInt(int64(n+1)))
}

// PEATSBits returns the paper's bit count for the PEATS strong binary
// consensus algorithm: n(⌈log n⌉+1) + (1+(t+1)⌈log n⌉) — n PROPOSE
// tuples of log n + 1 bits plus one DECISION tuple (§5.2). The paper's
// footnote 3 evaluates the formula with ⌊log₂ n⌋ (68 bits at n=13,
// t=4 requires log 13 = 3), so this function does the same.
func PEATSBits(n, t int) int {
	logn := floorLog2(n)
	return n*(logn+1) + (1 + (t+1)*logn)
}

func floorLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n)) - 1
}
