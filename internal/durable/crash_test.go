package durable

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// crashChildEnv tells the re-executed test binary to act as the crash
// child: open a DB in the named directory and append units forever,
// until the parent SIGKILLs it.
const crashChildEnv = "PEATS_DURABLE_CRASH_DIR"

// TestCrashChildProcess is not a test in the parent run: re-executed
// with crashChildEnv set, it is the victim process of
// TestProcessKillMidWriteRecoversCommittedPrefix.
func TestCrashChildProcess(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("crash child mode only")
	}
	db, err := Open(Options{Dir: dir, Sync: SyncAlways, AutoCompactBytes: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child open:", err)
		os.Exit(1)
	}
	st := db.NewStore()
	for i := uint64(1); ; i++ {
		db.BeginUnit(i)
		st.Insert(ut(int(i)), i)
		db.CommitUnit(fmt.Appendf(nil, "x%d", i))
	}
}

// TestProcessKillMidWriteRecoversCommittedPrefix SIGKILLs a real child
// process in the middle of a write-heavy loop and then recovers its
// data directory: the recovered state must be exactly the committed
// prefix of units 1..k — a state the cluster checkpointed or could
// checkpoint — never a partial unit, never a gap.
func TestProcessKillMidWriteRecoversCommittedPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Let the child commit some units before the kill: wait for WAL
	// growth past a threshold so the kill lands mid-stream.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var total int64
		paths, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
		for _, p := range paths {
			if fi, err := os.Stat(p); err == nil {
				total += fi.Size()
			}
		}
		if total > 16<<10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child produced no WAL growth")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	db, err := Open(Options{Dir: dir, Sync: SyncAlways, AutoCompactBytes: -1})
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer db.Close()
	rec := db.Recovered()
	k := int(rec.UnitSeq)
	if k == 0 {
		t.Fatal("no units recovered despite WAL growth")
	}
	wantPrefix(t, rec, k)
	if len(rec.Units) != k {
		t.Fatalf("recovered %d unit extras, want %d", len(rec.Units), k)
	}
	for i, u := range rec.Units {
		if u.Seq != uint64(i+1) || string(u.Extra) != fmt.Sprintf("x%d", i+1) {
			t.Fatalf("unit[%d] = %d/%q, want %d/x%d", i, u.Seq, u.Extra, i+1, i+1)
		}
	}
}
