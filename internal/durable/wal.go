package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"peats/internal/tuple"
	"peats/internal/wire"
)

// On-disk WAL framing: every record is
//
//	u32le payload length | u32le CRC-32C of payload | payload
//
// A record is durable iff its frame is complete and the checksum
// matches; recovery stops at the first frame that is not, so a unit —
// the payload always describes one whole unit — is atomic on disk.
// Payloads are encoded with the deterministic wire primitives.

// recHeaderLen is the fixed frame header size.
const recHeaderLen = 8

// maxRecordBytes bounds a single record. One record carries one
// agreement batch's mutations, which the protocol already bounds far
// below this; anything larger in a file is corruption, not data.
const maxRecordBytes = 1 << 28

// maxWALMuts bounds decoded mutation counts, so a corrupt or hostile
// record cannot force a huge allocation before the data runs out.
const maxWALMuts = 1 << 22

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms the replicas run on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an incomplete final frame — the expected shape of a
// crash mid-write. Recovery truncates it; any other decoding failure in
// the middle of the log is corruption and fails loudly instead.
var errTorn = errors.New("durable: torn record")

// errCorrupt marks a frame whose checksum or payload is bad.
var errCorrupt = errors.New("durable: corrupt record")

// Mutation is one logged store mutation: the insertion of a tuple under
// a space sequence number, or the removal of the tuple holding one.
// Within one database lifetime sequence numbers are stable (recovery
// re-installs recovered tuples under their original numbers), so
// removal by sequence number is exact.
type Mutation struct {
	Remove bool
	Seq    uint64
	T      tuple.Tuple // zero for removals
}

// WALRecord is the payload of one WAL frame: the mutations of one
// atomic unit (an agreement batch on a replica, a single operation on a
// local space), the unit's agreement sequence number (0 for local
// auto-units), and an opaque extra blob the replication layer uses for
// its per-batch client-table updates.
type WALRecord struct {
	Unit  uint64
	Muts  []Mutation
	Extra []byte
}

// EncodeWALRecord returns the canonical payload encoding of r.
func EncodeWALRecord(r WALRecord) []byte {
	w := wire.NewWriter()
	w.Uvarint(r.Unit)
	w.Uvarint(uint64(len(r.Muts)))
	for _, m := range r.Muts {
		if m.Remove {
			w.Byte(1)
			w.Uvarint(m.Seq)
		} else {
			w.Byte(0)
			w.Uvarint(m.Seq)
			w.Tuple(m.T)
		}
	}
	w.Bytes(r.Extra)
	return w.Data()
}

// DecodeWALRecord parses a WAL record payload. Like every decoder fed
// from disk or the network it may reject, but must never panic — a
// corrupt data directory has to surface as an error, not a crash.
func DecodeWALRecord(b []byte) (WALRecord, error) {
	r := wire.NewReader(b)
	rec := WALRecord{Unit: r.Uvarint()}
	count := r.Uvarint()
	if count > maxWALMuts {
		return WALRecord{}, fmt.Errorf("%w: %d mutations", errCorrupt, count)
	}
	if count > 0 && r.Err() == nil {
		rec.Muts = make([]Mutation, 0, min(count, 1024))
		for i := uint64(0); i < count; i++ {
			var m Mutation
			switch r.Byte() {
			case 0:
				m.Seq = r.Uvarint()
				m.T = r.Tuple()
			case 1:
				m.Remove = true
				m.Seq = r.Uvarint()
			default:
				return WALRecord{}, fmt.Errorf("%w: unknown mutation tag", errCorrupt)
			}
			if r.Err() != nil {
				break
			}
			rec.Muts = append(rec.Muts, m)
		}
	}
	rec.Extra = r.Bytes()
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return WALRecord{}, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	return rec, nil
}

// appendFrame appends the framed record to dst.
func appendFrame(dst []byte, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame parses one frame from the head of data, returning the
// payload view and the total frame length. It returns errTorn when the
// frame runs past the data (a crash mid-write) and errCorrupt when the
// checksum or length is bad.
func readFrame(data []byte) (payload []byte, n int, err error) {
	if len(data) < recHeaderLen {
		return nil, 0, errTorn
	}
	ln := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	if ln > maxRecordBytes {
		return nil, 0, errCorrupt
	}
	if uint64(len(data)) < recHeaderLen+uint64(ln) {
		return nil, 0, errTorn
	}
	payload = data[recHeaderLen : recHeaderLen+int(ln)]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, errCorrupt
	}
	return payload, recHeaderLen + int(ln), nil
}

// frameBuf accumulates the mutation stream of one open unit. Its
// encoding matches EncodeWALRecord, assembled incrementally so a
// unit's mutations stream straight into the payload as they happen.
type frameBuf struct {
	unit uint64
	muts []byte
	n    uint64
}

func (f *frameBuf) addInsert(seq uint64, t tuple.Tuple) {
	f.muts = append(f.muts, 0)
	f.muts = binary.AppendUvarint(f.muts, seq)
	f.muts = tuple.Append(f.muts, t)
	f.n++
}

func (f *frameBuf) addRemove(seq uint64) {
	f.muts = append(f.muts, 1)
	f.muts = binary.AppendUvarint(f.muts, seq)
	f.n++
}

// payload completes the unit's record payload with the extra blob.
func (f *frameBuf) payload(extra []byte) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+len(f.muts)+len(extra)+binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, f.unit)
	buf = binary.AppendUvarint(buf, f.n)
	buf = append(buf, f.muts...)
	buf = binary.AppendUvarint(buf, uint64(len(extra)))
	return append(buf, extra...)
}
