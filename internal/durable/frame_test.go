package durable

import (
	"os"
	"testing"
)

// readRecords decodes every WAL record across all segment files, in
// log order.
func readRecords(t *testing.T, dir string) []WALRecord {
	t.Helper()
	var out []WALRecord
	for _, path := range segFiles(t, dir) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for len(data) > 0 {
			payload, n, err := readFrame(data)
			if err != nil {
				t.Fatalf("readFrame(%s): %v", path, err)
			}
			rec, err := DecodeWALRecord(payload)
			if err != nil {
				t.Fatalf("DecodeWALRecord(%s): %v", path, err)
			}
			out = append(out, rec)
			data = data[n:]
		}
	}
	return out
}

func TestLocalUnitFramesTransactionIntoOneRecord(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncAlways)
	st := db.NewStore()

	st.Insert(ut(1), 1) // un-framed singleton: one record

	db.BeginLocalUnit() // multi-op local transaction: one record
	st.Insert(ut(2), 2)
	st.Insert(ut(3), 3)
	st.Insert(ut(4), 4)
	db.CommitLocalUnit()

	st.Insert(ut(5), 5) // singleton after the frame closes

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	recs := readRecords(t, dir)
	if len(recs) != 3 {
		t.Fatalf("wrote %d WAL records, want 3 (singleton, framed tx, singleton)", len(recs))
	}
	if got := len(recs[1].Muts); got != 3 {
		t.Errorf("framed record holds %d mutations, want 3", got)
	}
	for i, rec := range recs {
		if rec.Unit != 0 {
			t.Errorf("record %d has unit %d, want 0 for local frames", i, rec.Unit)
		}
	}

	db2 := mustOpen(t, dir, SyncAlways)
	defer db2.Close()
	wantPrefix(t, db2.Recovered(), 5)
}

func TestLocalUnitDoesNotAdvanceUnitSeq(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncAlways)
	st := db.NewStore()

	db.BeginUnit(1) // replication unit
	st.Insert(ut(1), 1)
	db.CommitUnit([]byte("u1"))

	db.BeginLocalUnit() // local frame must not look like unit 2
	st.Insert(ut(2), 2)
	st.Insert(ut(3), 3)
	db.CommitLocalUnit()

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, dir, SyncAlways)
	defer db2.Close()
	rec := db2.Recovered()
	wantPrefix(t, rec, 3)
	if rec.UnitSeq != 1 {
		t.Errorf("recovered UnitSeq = %d, want 1: local frames must not advance it", rec.UnitSeq)
	}
	if len(rec.Units) != 1 || string(rec.Units[0].Extra) != "u1" {
		t.Errorf("recovered units = %v, want just unit 1", rec.Units)
	}
}

func TestLocalUnitCrashBeforeCommitLosesWholeFrame(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncAlways)
	st := db.NewStore()

	st.Insert(ut(1), 1)

	db.BeginLocalUnit()
	st.Insert(ut(2), 2)
	st.Insert(ut(3), 3)
	db.Crash()           // power cut mid-transaction: frame never sealed
	db.CommitLocalUnit() // must be a no-op, not a panic, after Crash

	db2 := mustOpen(t, dir, SyncAlways)
	defer db2.Close()
	wantPrefix(t, db2.Recovered(), 1)
}

func TestLocalUnitEmptyFrameWritesNothing(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncAlways)
	st := db.NewStore()

	st.Insert(ut(1), 1)
	db.BeginLocalUnit() // read-only or aborted transaction
	db.CommitLocalUnit()

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if recs := readRecords(t, dir); len(recs) != 1 {
		t.Fatalf("wrote %d WAL records, want 1: empty frames must write nothing", len(recs))
	}
}
