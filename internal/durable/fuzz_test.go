package durable

import (
	"testing"

	"peats/internal/tuple"
)

// The WAL record decoder faces whatever a damaged disk holds: it may
// reject, but must never panic or over-allocate — a corrupt data
// directory has to surface as a recovery error, not a crash.

func sampleWALRecord() WALRecord {
	return WALRecord{
		Unit: 7,
		Muts: []Mutation{
			{Seq: 1, T: tuple.T(tuple.Str("A"), tuple.Int(1))},
			{Remove: true, Seq: 1},
			{Seq: 2, T: tuple.T(tuple.Bytes([]byte{0, 1, 2}), tuple.Bool(true))},
		},
		Extra: []byte("client-table"),
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	for _, rec := range []WALRecord{{}, sampleWALRecord()} {
		got, err := DecodeWALRecord(EncodeWALRecord(rec))
		if err != nil {
			t.Fatal(err)
		}
		if got.Unit != rec.Unit || len(got.Muts) != len(rec.Muts) || string(got.Extra) != string(rec.Extra) {
			t.Fatalf("round trip diverged: %+v != %+v", got, rec)
		}
		for i := range rec.Muts {
			if got.Muts[i].Remove != rec.Muts[i].Remove || got.Muts[i].Seq != rec.Muts[i].Seq ||
				!got.Muts[i].T.Equal(rec.Muts[i].T) {
				t.Fatalf("mut %d diverged", i)
			}
		}
	}
}

// TestFrameBufMatchesEncodeWALRecord pins the incremental frame
// assembly (the hot logging path) to the canonical record encoding the
// decoder and fuzz target exercise.
func TestFrameBufMatchesEncodeWALRecord(t *testing.T) {
	rec := sampleWALRecord()
	f := &frameBuf{unit: rec.Unit}
	for _, m := range rec.Muts {
		if m.Remove {
			f.addRemove(m.Seq)
		} else {
			f.addInsert(m.Seq, m.T)
		}
	}
	if got, want := string(f.payload(rec.Extra)), string(EncodeWALRecord(rec)); got != want {
		t.Fatalf("frame assembly diverged from canonical encoding:\n%x\n%x", got, want)
	}
}

func FuzzDecodeWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(EncodeWALRecord(WALRecord{}))
	f.Add(EncodeWALRecord(sampleWALRecord()))
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := DecodeWALRecord(b)
		if err != nil {
			return
		}
		back, err := DecodeWALRecord(EncodeWALRecord(rec))
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if back.Unit != rec.Unit || len(back.Muts) != len(rec.Muts) || string(back.Extra) != string(rec.Extra) {
			t.Fatal("round trip diverged")
		}
	})
}
