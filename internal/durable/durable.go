// Package durable is the durability subsystem: a write-ahead-logged
// persistent tuple-store engine behind the space.Store interface, with
// crash recovery and incremental on-disk compaction.
//
// One DB owns a data directory holding a segmented write-ahead log
// (wal-<N>.log) and full-state snapshots (snap-<N>.snap). Every store
// the DB hands out (one per space shard) wraps the in-memory indexed
// engine and journals its mutations — seq-stamped inserts and removes —
// into the shared log, framed per atomic unit: on a replica the
// replication layer opens a frame per agreement batch (BeginUnit /
// CommitUnit), so a batch hits the disk all-or-nothing; on a local
// space each mutation frames itself.
//
// Durability is tunable (SyncPolicy): fsync per unit, group commit
// (units accumulate in memory and one fsync covers every unit in the
// window — the throughput mode), or no fsync at all. On startup Open
// recovers by loading the newest valid snapshot and replaying the log
// tail, truncating a torn final record; a checksum failure anywhere
// else in the log is corruption and fails loudly. Compaction writes a
// fresh snapshot and deletes the segments it subsumes, keeping disk
// bounded under sustained load.
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"peats/internal/metrics"
	"peats/internal/space"
	"peats/internal/tuple"
)

// SyncPolicy selects when the WAL is fsynced.
type SyncPolicy string

const (
	// SyncAlways fsyncs every sealed unit before the mutation returns:
	// an acknowledged write survives any crash, at one fsync per unit.
	SyncAlways SyncPolicy = "always"
	// SyncInterval is group commit (the default): sealed units
	// accumulate in memory and a background syncer writes and fsyncs
	// them every SyncEvery. A crash loses at most the last window, but
	// never tears a unit — recovery lands on a unit boundary.
	SyncInterval SyncPolicy = "interval"
	// SyncNever writes units to the OS immediately but never fsyncs;
	// durability is whatever the OS page cache delivers.
	SyncNever SyncPolicy = "never"
)

// SyncPolicies lists the selectable policies.
func SyncPolicies() []SyncPolicy {
	return []SyncPolicy{SyncAlways, SyncInterval, SyncNever}
}

// Options configures a DB. Zero values select the documented defaults.
type Options struct {
	// Dir is the data directory (required). It is created if absent.
	Dir string
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the group-commit window for SyncInterval (default
	// 2ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the WAL to a new segment file once the
	// current one exceeds it (default 4 MiB).
	SegmentBytes int
	// AutoCompactBytes self-compacts once this many WAL bytes
	// accumulated since the last snapshot (default 64 MiB). Set
	// negative to disable — the replication layer does, because it
	// compacts at full-checkpoint boundaries itself.
	AutoCompactBytes int
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, errors.New("durable: Options.Dir is required")
	}
	switch o.Sync {
	case "":
		o.Sync = SyncInterval
	case SyncAlways, SyncInterval, SyncNever:
	default:
		return o, fmt.Errorf("durable: unknown sync policy %q (want always|interval|never)", o.Sync)
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.AutoCompactBytes == 0 {
		o.AutoCompactBytes = 64 << 20
	}
	return o, nil
}

// UnitExtra is the opaque blob a sealed unit carried, keyed by its
// agreement sequence number — the replication layer's per-batch
// client-table update, folded forward at recovery.
type UnitExtra struct {
	Seq   uint64
	Extra []byte
}

// Recovered is what Open reconstructed from the data directory.
type Recovered struct {
	// Tuples is the recovered live state, seq-sorted, ready for
	// space.Install.
	Tuples []space.SeqTuple
	// MaxSeq is the highest space sequence number ever logged; the
	// space resumes counting above it.
	MaxSeq uint64
	// UnitSeq is the agreement sequence number of the last durable
	// unit (0 when none was recovered).
	UnitSeq uint64
	// BaseExtra is the extra blob of the snapshot recovery started
	// from.
	BaseExtra []byte
	// Units lists the sealed replication units recovered after the
	// snapshot, in order.
	Units []UnitExtra
}

// DB is one durable store engine instance: the shared write-ahead log,
// snapshot machinery and in-memory mirror behind every store of one
// space.
type DB struct {
	opts Options

	mu       sync.Mutex
	mem      map[uint64]tuple.Tuple // live contents by space seq (mirror)
	maxSeq   uint64
	lastUnit uint64
	extra    []byte // latest full extra blob (snapshot base or Compact)

	seg      *os.File
	segIdx   uint64
	segSize  int
	walSince int // WAL bytes since the last snapshot

	buf     []byte // sealed frames not yet written to the file
	dirty   bool   // file bytes not yet fsynced
	frame   *frameBuf
	loading bool
	err     error // first I/O error; sticky

	// frameMu serializes framed local transactions (BeginLocalUnit /
	// CommitLocalUnit). It is held across the whole transaction — not
	// just the frame bookkeeping — because the DB has a single frame
	// slot; a second transaction must wait for the first to seal.
	frameMu sync.Mutex

	rec    Recovered
	closed bool

	stopSync chan struct{}
	syncDone chan struct{}

	// recoveryDur is how long Open's recovery pass took, for the
	// peats_durable_recovery_seconds gauge.
	recoveryDur time.Duration
	// unitsSinceSync counts sealed units since the last fsync — the
	// group-commit window observed by mCommitWindow. Guarded by mu.
	unitsSinceSync int

	// Metric handles, nil until EnableMetrics; nil handles no-op.
	mWALBytes     *metrics.Counter
	mUnits        *metrics.Counter
	mFsyncs       *metrics.Counter
	mCommitWindow *metrics.Histogram
	mRotations    *metrics.Counter
	mCompactions  *metrics.Counter
}

// Open opens (or creates) the data directory and recovers its state:
// the newest valid snapshot plus the WAL tail, with a torn final
// record truncated. The recovered state is available via Recovered;
// install it with space.Install under StartLoad/EndLoad.
func Open(opts Options) (*DB, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{
		opts:     opts,
		mem:      make(map[uint64]tuple.Tuple),
		stopSync: make(chan struct{}),
		syncDone: make(chan struct{}),
	}
	recStart := time.Now()
	if err := db.recover(); err != nil {
		return nil, err
	}
	db.recoveryDur = time.Since(recStart)
	if err := db.openSegment(db.segIdx + 1); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		go db.syncLoop()
	} else {
		close(db.syncDone)
	}
	return db, nil
}

// Recovered returns what Open reconstructed.
func (db *DB) Recovered() Recovered { return db.rec }

// Dir returns the data directory.
func (db *DB) Dir() string { return db.opts.Dir }

// Err returns the first I/O error the log hit, if any. Store mutations
// cannot return errors, so a failing disk surfaces here (and on
// Flush/Close); until then recovery simply lands on the last state
// that did reach the disk.
func (db *DB) Err() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.err
}

// NewStore returns a store bound to this DB, wrapping a fresh indexed
// engine. Build one per space shard (space.NewShardedFactory).
func (db *DB) NewStore() space.Store {
	return &Store{db: db, inner: space.NewIndexedStore()}
}

// ---- Recovery ----

// fileIdx parses the numeric index out of wal-/snap- file names.
func fileIdx(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func segName(idx uint64) string  { return fmt.Sprintf("wal-%016x.log", idx) }
func snapName(idx uint64) string { return fmt.Sprintf("snap-%016x.snap", idx) }

// recover loads the newest valid snapshot and replays the segments at
// or above its index, truncating a torn tail. It leaves db.segIdx at
// the highest segment index seen (0 when none).
func (db *DB) recover() error {
	entries, err := os.ReadDir(db.opts.Dir)
	if err != nil {
		return err
	}
	var segs, snaps []uint64
	for _, e := range entries {
		if idx, ok := fileIdx(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, idx)
		}
		if idx, ok := fileIdx(e.Name(), "snap-", ".snap"); ok {
			snaps = append(snaps, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	// Newest valid snapshot wins. An invalid newest snapshot (torn
	// compaction) falls back to the previous one, whose segments still
	// exist — compaction deletes files only after the new snapshot is
	// durable. If snapshots exist but none decodes, the state they
	// subsumed is gone: fail loudly rather than present partial state.
	var (
		base     snapshotData
		baseIdx  uint64
		haveSnap bool
	)
	for i := len(snaps) - 1; i >= 0; i-- {
		sd, err := readSnapshotFile(filepath.Join(db.opts.Dir, snapName(snaps[i])))
		if err == nil {
			base, baseIdx, haveSnap = sd, snaps[i], true
			break
		}
		if i == 0 {
			return fmt.Errorf("durable: no valid snapshot in %s: %w", db.opts.Dir, err)
		}
	}
	if haveSnap {
		for _, st := range base.tuples {
			db.mem[st.Seq] = st.T
		}
		db.maxSeq = base.maxSeq
		db.lastUnit = base.unitSeq
		db.extra = base.extra
		db.rec.BaseExtra = base.extra
	}

	// Coverage check: segment indexes are assigned consecutively, so
	// the live range [baseIdx, max] must have no holes — a hole means a
	// compaction deleted segments a (now unreadable) newer snapshot
	// subsumed, and replaying around it would silently present stale
	// state. Fail loudly instead.
	expect := baseIdx
	first := true
	for _, idx := range segs {
		if idx < baseIdx {
			continue
		}
		if first && !haveSnap {
			// No snapshot pins the start of the live range; the oldest
			// surviving segment does.
			expect = idx
		}
		first = false
		if idx != expect {
			return fmt.Errorf("durable: WAL segment %s missing (have %s): directory damaged",
				segName(expect), segName(idx))
		}
		expect++
	}
	if haveSnap && first {
		return fmt.Errorf("durable: WAL segment %s missing after snapshot: directory damaged", segName(baseIdx))
	}

	for i, idx := range segs {
		if idx > db.segIdx {
			db.segIdx = idx
		}
		if idx < baseIdx {
			continue // subsumed by the snapshot; deleted lazily below
		}
		if err := db.replaySegment(idx, i == len(segs)-1); err != nil {
			return err
		}
	}

	db.rec.Tuples = db.sortedStateLocked()
	db.rec.MaxSeq = db.maxSeq
	db.rec.UnitSeq = db.lastUnit

	// Lazy cleanup of files a finished compaction or recovery made
	// dead: segments and older snapshots below the chosen base.
	for _, idx := range segs {
		if idx < baseIdx {
			os.Remove(filepath.Join(db.opts.Dir, segName(idx)))
		}
	}
	for _, idx := range snaps {
		if idx < baseIdx {
			os.Remove(filepath.Join(db.opts.Dir, snapName(idx)))
		}
	}
	return nil
}

// replaySegment applies one segment's records. In the final segment a
// torn tail — a bad frame with nothing decodable after it, the residue
// of a crash mid-write — is truncated; a bad frame anywhere else, or
// one followed by intact records (writes are append-only, so a crash
// can only damage the final frame — anything after a damaged frame
// proves corruption of acknowledged data), fails loudly.
func (db *DB) replaySegment(idx uint64, last bool) error {
	path := filepath.Join(db.opts.Dir, segName(idx))
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		payload, n, ferr := readFrame(data[off:])
		var rec WALRecord
		if ferr == nil {
			rec, ferr = DecodeWALRecord(payload)
		}
		if ferr != nil {
			if !last || hasValidFrameAfter(data, off) {
				return fmt.Errorf("durable: segment %s offset %d: %w", segName(idx), off, ferr)
			}
			// Torn tail: drop it so the next segment appends after a
			// clean record boundary.
			return os.Truncate(path, int64(off))
		}
		db.applyRecord(rec)
		off += n
	}
	return nil
}

// hasValidFrameAfter reports whether any complete, checksummed,
// decodable record starts anywhere after the bad frame at off — the
// evidence that separates mid-data corruption (fail loudly) from a
// torn tail (truncate). It byte-scans because the bad frame's length
// field cannot be trusted; the scan runs once, only on a damaged file.
func hasValidFrameAfter(data []byte, off int) bool {
	for start := off + 1; start+recHeaderLen <= len(data); start++ {
		payload, _, err := readFrame(data[start:])
		if err != nil {
			continue
		}
		if _, err := DecodeWALRecord(payload); err == nil {
			return true
		}
	}
	return false
}

func (db *DB) applyRecord(rec WALRecord) {
	for _, m := range rec.Muts {
		if m.Remove {
			delete(db.mem, m.Seq)
			continue
		}
		db.mem[m.Seq] = m.T
		if m.Seq > db.maxSeq {
			db.maxSeq = m.Seq
		}
	}
	if rec.Unit != 0 {
		db.lastUnit = rec.Unit
		db.rec.Units = append(db.rec.Units, UnitExtra{Seq: rec.Unit, Extra: rec.Extra})
	}
}

func (db *DB) sortedStateLocked() []space.SeqTuple {
	out := make([]space.SeqTuple, 0, len(db.mem))
	for seq, t := range db.mem {
		out = append(out, space.SeqTuple{Seq: seq, T: t})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// ---- Logging ----

// recordInsert journals one insert (store wrapper hook).
func (db *DB) recordInsert(t tuple.Tuple, seq uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mem[seq] = t
	if seq > db.maxSeq {
		db.maxSeq = seq
	}
	if db.loading || db.closed {
		return
	}
	if f := db.frame; f != nil {
		f.addInsert(seq, t)
		return
	}
	f := &frameBuf{}
	f.addInsert(seq, t)
	db.sealLocked(f, nil)
}

// recordInsertBatch journals a whole InsertBatch as one atomic unit.
func (db *DB) recordInsertBatch(ts []space.SeqTuple) {
	if len(ts) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, st := range ts {
		db.mem[st.Seq] = st.T
		if st.Seq > db.maxSeq {
			db.maxSeq = st.Seq
		}
	}
	if db.loading || db.closed {
		return
	}
	if f := db.frame; f != nil {
		for _, st := range ts {
			f.addInsert(st.Seq, st.T)
		}
		return
	}
	f := &frameBuf{}
	for _, st := range ts {
		f.addInsert(st.Seq, st.T)
	}
	db.sealLocked(f, nil)
}

// recordRemove journals one removal.
func (db *DB) recordRemove(seq uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.mem, seq)
	if db.loading || db.closed {
		return
	}
	if f := db.frame; f != nil {
		f.addRemove(seq)
		return
	}
	f := &frameBuf{}
	f.addRemove(seq)
	db.sealLocked(f, nil)
}

// recordReset journals the removal of a whole store's contents (one
// shard of a space.Reset or Restore without the replication hooks), as
// one atomic unit.
func (db *DB) recordReset(seqs []uint64) {
	if len(seqs) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, seq := range seqs {
		delete(db.mem, seq)
	}
	if db.loading || db.closed {
		return
	}
	if f := db.frame; f != nil {
		for _, seq := range seqs {
			f.addRemove(seq)
		}
		return
	}
	f := &frameBuf{}
	for _, seq := range seqs {
		f.addRemove(seq)
	}
	db.sealLocked(f, nil)
}

// BeginUnit opens the WAL frame for one replication unit (agreement
// batch): every store mutation until CommitUnit lands in this frame
// and reaches the disk atomically. seq is the batch's agreement
// sequence number and must be nonzero.
func (db *DB) BeginUnit(seq uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.frame != nil {
		panic("durable: BeginUnit with a unit already open")
	}
	if seq == 0 {
		panic("durable: BeginUnit with seq 0")
	}
	db.frame = &frameBuf{unit: seq}
}

// CommitUnit seals the open frame with the replication layer's extra
// blob and makes it durable per the sync policy.
func (db *DB) CommitUnit(extra []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	f := db.frame
	if f == nil {
		panic("durable: CommitUnit without BeginUnit")
	}
	db.frame = nil
	if db.closed {
		return
	}
	db.sealLocked(f, extra)
}

// BeginLocalUnit opens a WAL frame for one local multi-op transaction:
// every store mutation until CommitLocalUnit lands in a single frame
// and reaches the disk atomically, costing one group-commit window
// instead of one journal record per op. Unlike replication units the
// frame carries no agreement sequence number (unit 0), so recovery
// treats it as a plain atomic mutation group.
//
// Concurrent local transactions serialize on the frame: the DB has one
// frame slot, so a second BeginLocalUnit blocks until the first
// transaction commits. Un-framed singleton mutations that race with an
// open frame ride along inside it — still atomic, merely batched a
// little coarser, which the group-commit window does anyway.
func (db *DB) BeginLocalUnit() {
	db.frameMu.Lock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.frame != nil {
		panic("durable: BeginLocalUnit with a unit already open")
	}
	db.frame = &frameBuf{}
}

// CommitLocalUnit seals the frame BeginLocalUnit opened and makes it
// durable per the sync policy. An empty frame (the transaction aborted
// or was read-only) writes nothing.
func (db *DB) CommitLocalUnit() {
	db.mu.Lock()
	f := db.frame
	if f == nil {
		if db.closed { // Crash() dropped the open frame
			db.mu.Unlock()
			db.frameMu.Unlock()
			return
		}
		db.mu.Unlock()
		panic("durable: CommitLocalUnit without BeginLocalUnit")
	}
	db.frame = nil
	if f.n > 0 && !db.closed {
		db.sealLocked(f, nil)
	}
	db.mu.Unlock()
	db.frameMu.Unlock()
}

// StartLoad enters load mode: store mutations keep the in-memory
// mirror current but are not journaled. Recovery installs and state
// transfers use it — their contents are (or are about to be) covered
// by a snapshot, not the log.
func (db *DB) StartLoad() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.loading = true
}

// EndLoad leaves load mode.
func (db *DB) EndLoad() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.loading = false
}

// sealLocked frames a completed unit into the log buffer and applies
// the sync policy, segment rotation and auto-compaction.
func (db *DB) sealLocked(f *frameBuf, extra []byte) {
	if f.unit != 0 {
		db.lastUnit = f.unit
	}
	pre := len(db.buf)
	db.buf = appendFrame(db.buf, f.payload(extra))
	db.walSince += len(db.buf) - pre
	db.mUnits.Inc()
	db.mWALBytes.Add(uint64(len(db.buf) - pre))
	db.unitsSinceSync++
	switch db.opts.Sync {
	case SyncAlways:
		db.writeLocked()
		db.fsyncLocked()
	case SyncNever:
		db.writeLocked()
	}
	if db.segSize+len(db.buf) > db.opts.SegmentBytes {
		db.rotateLocked()
	}
	if db.opts.AutoCompactBytes > 0 && db.walSince > db.opts.AutoCompactBytes {
		db.compactLocked(db.lastUnit, db.extra)
	}
}

func (db *DB) fail(err error) {
	if db.err == nil && err != nil {
		db.err = err
	}
}

// writeLocked pushes the buffered frames into the segment file.
func (db *DB) writeLocked() {
	if len(db.buf) == 0 || db.seg == nil {
		return
	}
	n, err := db.seg.Write(db.buf)
	db.segSize += n
	db.fail(err)
	db.buf = db.buf[:0]
	db.dirty = true
}

func (db *DB) fsyncLocked() {
	if !db.dirty || db.seg == nil {
		return
	}
	db.fail(db.seg.Sync())
	db.dirty = false
	db.mFsyncs.Inc()
	db.mCommitWindow.Observe(float64(db.unitsSinceSync))
	db.unitsSinceSync = 0
}

// openSegment flushes and closes the current segment (if any) and
// starts segment idx.
func (db *DB) openSegment(idx uint64) error {
	f, err := os.OpenFile(filepath.Join(db.opts.Dir, segName(idx)), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	db.seg = f
	db.segIdx = idx
	db.segSize = 0
	db.dirty = false
	return syncDir(db.opts.Dir)
}

func (db *DB) rotateLocked() {
	db.mRotations.Inc()
	db.writeLocked()
	db.fsyncLocked()
	if db.seg != nil {
		db.fail(db.seg.Close())
	}
	if err := db.openSegment(db.segIdx + 1); err != nil {
		db.fail(err)
		db.seg = nil
	}
}

// ---- Compaction ----

// Compact writes a fresh full snapshot of the live state — declared to
// cover unit seq, with the replication layer's extra blob — and
// deletes the WAL segments and snapshots it subsumes, bounding the
// disk. The replication layer calls it at full-checkpoint boundaries
// and after a state-transfer Restore (which is how "Restore resets the
// WAL"); local spaces self-compact by AutoCompactBytes.
func (db *DB) Compact(unitSeq uint64, extra []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("durable: compact on closed DB")
	}
	if db.frame != nil {
		return errors.New("durable: compact with a unit open")
	}
	db.compactLocked(unitSeq, extra)
	return db.err
}

func (db *DB) compactLocked(unitSeq uint64, extra []byte) {
	db.mCompactions.Inc()
	if unitSeq > db.lastUnit {
		db.lastUnit = unitSeq
	}
	db.extra = extra
	// Seal what we have, move to a fresh segment, and snapshot
	// everything before it.
	db.rotateLocked()
	sd := snapshotData{
		unitSeq: db.lastUnit,
		maxSeq:  db.maxSeq,
		extra:   extra,
		tuples:  db.sortedStateLocked(),
	}
	if err := writeSnapshotFile(db.opts.Dir, snapName(db.segIdx), sd); err != nil {
		db.fail(err)
		return
	}
	// The snapshot is durable: everything below the current segment is
	// dead.
	entries, err := os.ReadDir(db.opts.Dir)
	if err != nil {
		db.fail(err)
		return
	}
	for _, e := range entries {
		if idx, ok := fileIdx(e.Name(), "wal-", ".log"); ok && idx < db.segIdx {
			os.Remove(filepath.Join(db.opts.Dir, e.Name()))
		}
		if idx, ok := fileIdx(e.Name(), "snap-", ".snap"); ok && idx < db.segIdx {
			os.Remove(filepath.Join(db.opts.Dir, e.Name()))
		}
	}
	db.fail(syncDir(db.opts.Dir))
	db.walSince = 0
}

// ---- Lifecycle ----

func (db *DB) syncLoop() {
	defer close(db.syncDone)
	t := time.NewTicker(db.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			db.mu.Lock()
			if !db.closed {
				db.writeLocked()
				db.fsyncLocked()
			}
			db.mu.Unlock()
		case <-db.stopSync:
			return
		}
	}
}

// Flush forces every sealed unit to durable storage and reports the
// first I/O error the log has hit.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.closed {
		db.writeLocked()
		db.fsyncLocked()
	}
	return db.err
}

// Close flushes and closes the log. The DB is unusable afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return db.err
	}
	db.closed = true
	db.writeLocked()
	db.fsyncLocked()
	if db.seg != nil {
		db.fail(db.seg.Close())
		db.seg = nil
	}
	db.mu.Unlock()
	close(db.stopSync)
	<-db.syncDone
	return db.Err()
}

// Crash abandons every unit not yet written and closes the log without
// flushing — the in-process stand-in for SIGKILL, used by crash tests:
// whatever group commit had not synced is lost, exactly as a real
// crash would lose it.
func (db *DB) Crash() {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return
	}
	db.closed = true
	db.buf = nil
	db.frame = nil
	if db.seg != nil {
		db.seg.Close()
		db.seg = nil
	}
	db.mu.Unlock()
	close(db.stopSync)
	<-db.syncDone
}

// DiskUsage reports the data directory's current WAL segment count and
// total on-disk bytes (segments plus snapshots) — what the bounded-disk
// tests and the bench harness assert on.
func (db *DB) DiskUsage() (segments int, bytes int64, err error) {
	entries, err := os.ReadDir(db.opts.Dir)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		if _, ok := fileIdx(e.Name(), "wal-", ".log"); ok {
			segments++
			bytes += info.Size()
		}
		if _, ok := fileIdx(e.Name(), "snap-", ".snap"); ok {
			bytes += info.Size()
		}
	}
	return segments, bytes, nil
}
