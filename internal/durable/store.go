package durable

import (
	"peats/internal/space"
	"peats/internal/tuple"
)

// Store is the persistent storage engine: the in-memory indexed engine
// for matching, with every mutation journaled into the owning DB's
// write-ahead log. All stores of one space share one DB (one log, one
// group-commit window, one snapshot lineage); the DB's mutex serialises
// journal appends across shards, while matching itself stays under the
// per-shard locks exactly like the indexed engine.
//
// Reads delegate untouched, so the Store concurrency contract (pure
// reads under shared locks) holds exactly as for the inner engine.
type Store struct {
	db    *DB
	inner space.Store
}

var _ space.Store = (*Store)(nil)

// Engine implements space.Store.
func (s *Store) Engine() space.Engine { return space.EngineDurable }

// Insert implements space.Store.
func (s *Store) Insert(t tuple.Tuple, seq uint64) {
	s.inner.Insert(t, seq)
	s.db.recordInsert(t, seq)
}

// InsertBatch implements space.Store. The whole batch is journaled as
// one atomic unit.
func (s *Store) InsertBatch(ts []space.SeqTuple) {
	s.inner.InsertBatch(ts)
	s.db.recordInsertBatch(ts)
}

// Find implements space.Store; a removal is journaled by sequence
// number.
func (s *Store) Find(tmpl tuple.Tuple, remove bool) (tuple.Tuple, uint64, bool) {
	t, seq, ok := s.inner.Find(tmpl, remove)
	if ok && remove {
		s.db.recordRemove(seq)
	}
	return t, seq, ok
}

// FindAll implements space.Store.
func (s *Store) FindAll(tmpl tuple.Tuple) []space.SeqTuple { return s.inner.FindAll(tmpl) }

// Count implements space.Store.
func (s *Store) Count(tmpl tuple.Tuple) int { return s.inner.Count(tmpl) }

// Len implements space.Store.
func (s *Store) Len() int { return s.inner.Len() }

// ForEach implements space.Store.
func (s *Store) ForEach(fn func(t tuple.Tuple, seq uint64) bool) { s.inner.ForEach(fn) }

// Iter implements space.Store.
func (s *Store) Iter() func() (space.SeqTuple, bool) { return s.inner.Iter() }

// Snapshot implements space.Store.
func (s *Store) Snapshot() []space.SeqTuple { return s.inner.Snapshot() }

// Reset implements space.Store: the discard of this shard's contents is
// journaled as one atomic unit of removals.
func (s *Store) Reset() {
	var seqs []uint64
	s.inner.ForEach(func(_ tuple.Tuple, seq uint64) bool {
		seqs = append(seqs, seq)
		return true
	})
	s.inner.Reset()
	s.db.recordReset(seqs)
}
