package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"peats/internal/space"
	"peats/internal/wire"
)

// Snapshot files carry the full state as of a WAL position: the file
// snap-<N>.snap holds everything the segments below index N said, so
// recovery loads the highest valid snapshot and replays only the
// segments at or above its index. The layout is
//
//	8-byte magic | u32le CRC-32C of payload | payload
//
// with the payload carrying the covered unit sequence number, the
// space sequence counter, the replication layer's extra blob (its
// client table at the snapshot point), and the seq-sorted live tuples.
// Snapshots are written to a temp file and renamed into place, so a
// crash mid-snapshot leaves the previous snapshot (and the segments it
// needs) untouched.

var snapMagic = [8]byte{'P', 'T', 'S', 'N', 'A', 'P', '0', '1'}

// snapshotData is a decoded snapshot file.
type snapshotData struct {
	unitSeq uint64
	maxSeq  uint64
	extra   []byte
	tuples  []space.SeqTuple
}

func encodeSnapshot(sd snapshotData) []byte {
	w := wire.NewWriter()
	w.Uvarint(sd.unitSeq)
	w.Uvarint(sd.maxSeq)
	w.Bytes(sd.extra)
	w.Uvarint(uint64(len(sd.tuples)))
	for _, st := range sd.tuples {
		w.Uvarint(st.Seq)
		w.Tuple(st.T)
	}
	payload := w.Data()
	out := make([]byte, 0, len(snapMagic)+4+len(payload))
	out = append(out, snapMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// maxSnapTuples bounds decoded snapshot sizes the same way the WAL
// decoder bounds mutation counts.
const maxSnapTuples = 1 << 26

func decodeSnapshot(b []byte) (snapshotData, error) {
	if len(b) < len(snapMagic)+4 || string(b[:len(snapMagic)]) != string(snapMagic[:]) {
		return snapshotData{}, fmt.Errorf("%w: bad snapshot header", errCorrupt)
	}
	sum := binary.LittleEndian.Uint32(b[len(snapMagic) : len(snapMagic)+4])
	payload := b[len(snapMagic)+4:]
	if crc32.Checksum(payload, crcTable) != sum {
		return snapshotData{}, fmt.Errorf("%w: snapshot checksum mismatch", errCorrupt)
	}
	r := wire.NewReader(payload)
	sd := snapshotData{unitSeq: r.Uvarint(), maxSeq: r.Uvarint(), extra: r.Bytes()}
	count := r.Uvarint()
	if count > maxSnapTuples {
		return snapshotData{}, fmt.Errorf("%w: snapshot with %d tuples", errCorrupt, count)
	}
	if count > 0 && r.Err() == nil {
		sd.tuples = make([]space.SeqTuple, 0, min(count, 4096))
		for i := uint64(0); i < count; i++ {
			st := space.SeqTuple{Seq: r.Uvarint()}
			st.T = r.Tuple()
			if r.Err() != nil {
				break
			}
			sd.tuples = append(sd.tuples, st)
		}
	}
	r.ExpectEOF()
	if err := r.Err(); err != nil {
		return snapshotData{}, fmt.Errorf("%w: snapshot payload: %v", errCorrupt, err)
	}
	return sd, nil
}

func readSnapshotFile(path string) (snapshotData, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return snapshotData{}, err
	}
	return decodeSnapshot(b)
}

// writeSnapshotFile durably writes a snapshot: temp file, fsync,
// rename, directory fsync.
func writeSnapshotFile(dir, name string, sd snapshotData) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSnapshot(sd)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and unlinks are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
