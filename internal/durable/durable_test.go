package durable

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"peats/internal/space"
	"peats/internal/tuple"
)

// ut builds the test tuple ("u", i).
func ut(i int) tuple.Tuple { return tuple.T(tuple.Str("u"), tuple.Int(int64(i))) }

// mustOpen opens a DB over dir with the given policy and test-friendly
// sizes.
func mustOpen(t *testing.T, dir string, sync SyncPolicy, mods ...func(*Options)) *DB {
	t.Helper()
	opts := Options{Dir: dir, Sync: sync, AutoCompactBytes: -1}
	for _, m := range mods {
		m(&opts)
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// wantPrefix asserts the recovered state is exactly tuples ("u", 1..k)
// under seqs 1..k — the committed-prefix property crash recovery must
// deliver.
func wantPrefix(t *testing.T, rec Recovered, k int) {
	t.Helper()
	if len(rec.Tuples) != k {
		t.Fatalf("recovered %d tuples, want %d", len(rec.Tuples), k)
	}
	for i, st := range rec.Tuples {
		if st.Seq != uint64(i+1) || !st.T.Equal(ut(i+1)) {
			t.Fatalf("recovered[%d] = %v@%d, want %v@%d", i, st.T, st.Seq, ut(i+1), i+1)
		}
	}
}

// segFiles lists the dir's WAL segment paths in index order.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

// lastNonEmptySeg returns the newest segment that holds data.
func lastNonEmptySeg(t *testing.T, dir string) string {
	t.Helper()
	paths := segFiles(t, dir)
	for i := len(paths) - 1; i >= 0; i-- {
		if fi, err := os.Stat(paths[i]); err == nil && fi.Size() > 0 {
			return paths[i]
		}
	}
	t.Fatal("no non-empty WAL segment")
	return ""
}

func TestOpenRejectsBadOptions(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("Open accepted an empty data dir")
	}
	if _, err := Open(Options{Dir: t.TempDir(), Sync: "sometimes"}); err == nil {
		t.Error("Open accepted an unknown sync policy")
	}
}

func TestRecoverAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncAlways)
	st := db.NewStore()
	for i := 1; i <= 100; i++ {
		st.Insert(ut(i), uint64(i))
	}
	// Remove a few via the store path so removals are journaled too.
	for i := 1; i <= 10; i++ {
		if _, _, ok := st.Find(ut(i), true); !ok {
			t.Fatalf("find %d failed", i)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, dir, SyncAlways)
	defer db2.Close()
	rec := db2.Recovered()
	if len(rec.Tuples) != 90 || rec.MaxSeq != 100 {
		t.Fatalf("recovered %d tuples maxSeq %d, want 90/100", len(rec.Tuples), rec.MaxSeq)
	}
	for i, stt := range rec.Tuples {
		if want := uint64(i + 11); stt.Seq != want {
			t.Fatalf("recovered[%d].Seq = %d, want %d", i, stt.Seq, want)
		}
	}
}

func TestUnitFramingAtomicAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncAlways)
	st := db.NewStore()

	db.BeginUnit(1)
	st.Insert(ut(1), 1)
	st.Insert(ut(2), 2)
	db.CommitUnit([]byte("a"))

	db.BeginUnit(2)
	st.Insert(ut(3), 3)
	if _, _, ok := st.Find(ut(1), true); !ok {
		t.Fatal("remove failed")
	}
	db.CommitUnit([]byte("b"))

	// A unit begun but never committed must vanish entirely.
	db.BeginUnit(3)
	st.Insert(ut(4), 4)
	db.Crash()

	db2 := mustOpen(t, dir, SyncAlways)
	defer db2.Close()
	rec := db2.Recovered()
	if rec.UnitSeq != 2 {
		t.Fatalf("UnitSeq = %d, want 2", rec.UnitSeq)
	}
	if len(rec.Tuples) != 2 || rec.Tuples[0].Seq != 2 || rec.Tuples[1].Seq != 3 {
		t.Fatalf("recovered %v, want seqs 2,3", rec.Tuples)
	}
	if len(rec.Units) != 2 || rec.Units[0].Seq != 1 || string(rec.Units[0].Extra) != "a" ||
		rec.Units[1].Seq != 2 || string(rec.Units[1].Extra) != "b" {
		t.Fatalf("recovered units %v", rec.Units)
	}
}

func TestGroupCommitCrashLosesOnlyUnsyncedWindow(t *testing.T) {
	dir := t.TempDir()
	// A huge group-commit window: nothing syncs unless Flush does.
	db := mustOpen(t, dir, SyncInterval, func(o *Options) { o.SyncEvery = time.Hour })
	st := db.NewStore()
	for i := 1; i <= 10; i++ {
		st.Insert(ut(i), uint64(i))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 20; i++ {
		st.Insert(ut(i), uint64(i))
	}
	db.Crash() // the second ten never reached the disk

	db2 := mustOpen(t, dir, SyncInterval)
	defer db2.Close()
	wantPrefix(t, db2.Recovered(), 10)
}

func TestSyncAlwaysCrashLosesNothing(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncAlways)
	st := db.NewStore()
	for i := 1; i <= 20; i++ {
		st.Insert(ut(i), uint64(i))
	}
	db.Crash()

	db2 := mustOpen(t, dir, SyncAlways)
	defer db2.Close()
	wantPrefix(t, db2.Recovered(), 20)
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncAlways)
	st := db.NewStore()
	for i := 1; i <= 50; i++ {
		st.Insert(ut(i), uint64(i))
	}
	db.Close()

	// A crash mid-write leaves a half-frame at the tail: a plausible
	// header claiming more bytes than follow.
	seg := lastNonEmptySeg(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	grown, _ := os.Stat(seg)

	db2 := mustOpen(t, dir, SyncAlways)
	defer db2.Close()
	wantPrefix(t, db2.Recovered(), 50)
	if fi, err := os.Stat(seg); err != nil || fi.Size() >= grown.Size() {
		t.Fatalf("torn tail not truncated: %d >= %d", fi.Size(), grown.Size())
	}
}

func TestBitFlipBeforeIntactRecordsFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncAlways)
	st := db.NewStore()
	for i := 1; i <= 50; i++ {
		st.Insert(ut(i), uint64(i))
	}
	db.Close()

	seg := lastNonEmptySeg(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit three quarters of the way in: intact, acknowledged
	// records follow the damage, so this cannot be a torn tail —
	// recovery must refuse rather than silently drop them.
	pos := len(data) * 3 / 4
	data[pos] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open silently dropped acknowledged records after a damaged one")
	}
}

func TestBitFlipInFinalRecordTruncatesToCommittedPrefix(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncAlways)
	st := db.NewStore()
	for i := 1; i <= 50; i++ {
		st.Insert(ut(i), uint64(i))
	}
	db.Close()

	// Damage inside the very last record — indistinguishable from a
	// crash that half-wrote it: recovery lands on the unit boundary
	// before it, an earlier committed state.
	seg := lastNonEmptySeg(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, dir, SyncAlways)
	defer db2.Close()
	wantPrefix(t, db2.Recovered(), 49)
}

func TestBitFlipMidLogFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a multi-segment log.
	db := mustOpen(t, dir, SyncAlways, func(o *Options) { o.SegmentBytes = 256 })
	st := db.NewStore()
	for i := 1; i <= 200; i++ {
		st.Insert(ut(i), uint64(i))
	}
	db.Close()

	segs := segFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want several segments, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a corrupt mid-log segment")
	}
}

func TestMissingSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncAlways, func(o *Options) { o.SegmentBytes = 256 })
	st := db.NewStore()
	for i := 1; i <= 200; i++ {
		st.Insert(ut(i), uint64(i))
	}
	db.Close()

	segs := segFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want several segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a log with a missing segment")
	}
}

func TestCompactionBoundsDiskAndSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncNever, func(o *Options) { o.SegmentBytes = 1 << 10 })
	st := db.NewStore()
	seq := uint64(0)
	unit := uint64(0)
	churn := func(n int) {
		for i := 0; i < n; i++ {
			unit++
			db.BeginUnit(unit)
			seq++
			st.Insert(ut(int(seq)), seq)
			if seq > 1 {
				st.Find(ut(int(seq-1)), true) // keep the live set at 1
			}
			db.CommitUnit(nil)
		}
	}
	churn(500)
	if segs, _, _ := db.DiskUsage(); segs < 2 {
		t.Fatalf("expected several segments before compaction, got %d", segs)
	}
	if err := db.Compact(unit, []byte("extra")); err != nil {
		t.Fatal(err)
	}
	segsAfter, bytesAfter, err := db.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if segsAfter != 1 {
		t.Fatalf("compaction left %d segments, want 1", segsAfter)
	}
	if bytesAfter > 4<<10 {
		t.Fatalf("compaction left %d bytes on disk", bytesAfter)
	}
	churn(100)
	db.Close()

	db2 := mustOpen(t, dir, SyncNever)
	defer db2.Close()
	rec := db2.Recovered()
	if len(rec.Tuples) != 1 || rec.Tuples[0].Seq != seq {
		t.Fatalf("recovered %v, want single live tuple at seq %d", rec.Tuples, seq)
	}
	if rec.UnitSeq != unit {
		t.Fatalf("recovered unit %d, want %d", rec.UnitSeq, unit)
	}
	if string(rec.BaseExtra) != "extra" {
		t.Fatalf("recovered base extra %q", rec.BaseExtra)
	}
	// The 100 post-compaction units replay from the log.
	if len(rec.Units) != 100 {
		t.Fatalf("recovered %d units, want 100", len(rec.Units))
	}
}

func TestAutoCompactionKeepsDiskBoundedUnderSustainedLoad(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir, SyncNever, func(o *Options) {
		o.SegmentBytes = 1 << 10
		o.AutoCompactBytes = 4 << 10
	})
	st := db.NewStore()
	for i := 1; i <= 5000; i++ {
		st.Insert(ut(i), uint64(i))
		if i > 1 {
			st.Find(ut(i-1), true)
		}
		if i%500 == 0 {
			if _, bytes, err := db.DiskUsage(); err != nil || bytes > 64<<10 {
				t.Fatalf("disk grew to %d bytes at op %d (err %v)", bytes, i, err)
			}
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := mustOpen(t, dir, SyncNever)
	defer db2.Close()
	rec := db2.Recovered()
	if len(rec.Tuples) != 1 || rec.Tuples[0].Seq != 5000 {
		t.Fatalf("recovered %v, want single live tuple at seq 5000", rec.Tuples)
	}
}

// TestSpaceLevelRecovery drives a real sharded space over the durable
// engine, restarts it, and checks the recovered space carries on with
// the sequence numbering the log recorded.
func TestSpaceLevelRecovery(t *testing.T) {
	dir := t.TempDir()
	open := func() (*space.Space, *DB) {
		db := mustOpen(t, dir, SyncAlways)
		sp, err := space.NewShardedFactory(4, func(int) (space.Store, error) { return db.NewStore(), nil })
		if err != nil {
			t.Fatal(err)
		}
		db.StartLoad()
		if err := sp.Install(db.Recovered().Tuples); err != nil {
			t.Fatal(err)
		}
		db.EndLoad()
		return sp, db
	}

	sp, db := open()
	for i := 1; i <= 30; i++ {
		if err := sp.Out(ut(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := sp.Inp(tuple.T(tuple.Str("u"), tuple.Int(7))); !ok {
		t.Fatal("inp failed")
	}
	db.Crash()

	sp2, db2 := open()
	defer db2.Close()
	if sp2.Len() != 29 {
		t.Fatalf("recovered space has %d tuples, want 29", sp2.Len())
	}
	if _, ok := sp2.Rdp(tuple.T(tuple.Str("u"), tuple.Int(7))); ok {
		t.Fatal("removed tuple resurrected")
	}
	// New inserts continue above the recovered numbering: insertion
	// order (and so match order) is preserved across the restart.
	if err := sp2.Out(ut(7)); err != nil {
		t.Fatal(err)
	}
	got, ok := sp2.Rdp(tuple.T(tuple.Str("u"), tuple.Any()))
	if !ok || !got.Equal(ut(1)) {
		t.Fatalf("first match after restart = %v, want %v", got, ut(1))
	}
	// And a Restore through the plain store path (no replication hooks)
	// is journaled, so it survives another restart.
	sp2.Restore([]tuple.Tuple{ut(100), ut(101)})
	db2.Close()

	sp3, db3 := open()
	defer db3.Close()
	if sp3.Len() != 2 {
		t.Fatalf("restored space has %d tuples after restart, want 2", sp3.Len())
	}
	if _, ok := sp3.Rdp(tuple.T(tuple.Str("u"), tuple.Int(100))); !ok {
		t.Fatal("restored tuple missing after restart")
	}
}
