package durable

import (
	"peats/internal/metrics"
)

// EnableMetrics registers the durability engine's metric series: WAL
// throughput (bytes, units, fsyncs, group-commit window), segment
// rotations and compactions, recovery duration, and on-disk footprint.
// Call once, after Open and before serving traffic; the disk gauges
// list the data directory at scrape time, which touches no DB state.
// A nil registry is a no-op.
func (db *DB) EnableMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	if reg == nil {
		return
	}
	db.mWALBytes = reg.Counter("peats_wal_bytes_total",
		"Bytes appended to the write-ahead log.", labels...)
	db.mUnits = reg.Counter("peats_wal_units_total",
		"Atomic units (frames) sealed into the log.", labels...)
	db.mFsyncs = reg.Counter("peats_wal_fsyncs_total",
		"fsync calls on the active segment.", labels...)
	db.mCommitWindow = reg.Histogram("peats_wal_group_commit_units",
		"Units covered by one fsync (the group-commit window).",
		metrics.SizeBuckets, labels...)
	db.mRotations = reg.Counter("peats_wal_segment_rotations_total",
		"Segment rotations (size limit, compaction, or close).", labels...)
	db.mCompactions = reg.Counter("peats_durable_compactions_total",
		"Snapshot compactions (checkpoint-driven or AutoCompactBytes).", labels...)

	reg.GaugeFunc("peats_durable_recovery_seconds",
		"How long the last Open spent recovering snapshot plus WAL tail.",
		func() float64 { return db.recoveryDur.Seconds() }, labels...)
	reg.GaugeFunc("peats_durable_disk_segments",
		"Live WAL segment files in the data directory.",
		func() float64 {
			segs, _, err := db.DiskUsage()
			if err != nil {
				return -1
			}
			return float64(segs)
		}, labels...)
	reg.GaugeFunc("peats_durable_disk_bytes",
		"Total on-disk bytes (segments plus snapshots).",
		func() float64 {
			_, bytes, err := db.DiskUsage()
			if err != nil {
				return -1
			}
			return float64(bytes)
		}, labels...)
}
