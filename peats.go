// Package peats is the public API of the PEATS library — a Go
// implementation of "Sharing Memory between Byzantine Processes Using
// Policy-Enforced Tuple Spaces" (Bessani, Correia, Fraga, Lung; ICDCS
// 2006 / IEEE TPDS 2009).
//
// A PEATS is an augmented tuple space — a LINDA tuple space with a
// conditional atomic swap (cas) — protected by a fine-grained access
// policy evaluated by a reference monitor on every invocation. On top
// of a single PEATS the library provides the paper's Byzantine
// fault-tolerant consensus objects (weak, strong, default multivalued)
// and its lock-free and wait-free universal constructions, plus the
// replicated realisation of the space over a PBFT-style state machine
// replication substrate.
//
// Quick start (local space, weak consensus):
//
//	s := peats.NewSpace(consensus.WeakPolicy())
//	c := consensus.NewWeak(s.Handle("p1"))
//	decision, err := c.Propose(ctx, peats.Int(42))
//
// The same algorithms run unchanged over a Byzantine fault-tolerant
// replicated space; see NewLocalCluster and the examples/ directory.
package peats

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"peats/internal/bft"
	"peats/internal/durable"
	"peats/internal/partition"
	ipeats "peats/internal/peats"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/tuple"
)

// Tuple-model re-exports.
type (
	// Tuple is a sequence of typed fields: an entry when all fields are
	// defined, a template otherwise.
	Tuple = tuple.Tuple
	// Field is one tuple position: a value, the wildcard, or a formal
	// field.
	Field = tuple.Field
	// Bindings maps formal-field names to matched values.
	Bindings = tuple.Bindings
)

// Field and tuple constructors (see package tuple).
var (
	// T builds a tuple from fields.
	T = tuple.T
	// Int builds a defined integer field.
	Int = tuple.Int
	// Str builds a defined string field.
	Str = tuple.Str
	// Bool builds a defined boolean field.
	Bool = tuple.Bool
	// Bytes builds a defined byte-string field.
	Bytes = tuple.Bytes
	// Any is the wildcard field "*".
	Any = tuple.Any
	// Formal builds the formal field "?name", which binds on match.
	Formal = tuple.Formal
	// Match tests an entry against a template, returning bindings.
	Match = tuple.Match
)

// Policy-model re-exports.
type (
	// ProcessID is an authenticated process identity.
	ProcessID = policy.ProcessID
	// Policy is a set of access rules with deny-by-default semantics.
	Policy = policy.Policy
	// Rule pairs an operation with the predicate that must hold for an
	// invocation of it to execute.
	Rule = policy.Rule
	// Invocation is what the reference monitor inspects: invoker,
	// operation, arguments.
	Invocation = policy.Invocation
	// StateView is the read-only object state visible to predicates.
	StateView = policy.StateView
)

// NewPolicy builds a policy from rules; AllowAll permits everything.
var (
	NewPolicy = policy.New
	AllowAll  = policy.AllowAll
)

// Space re-exports.
type (
	// Space is a local linearizable PEATS.
	Space = ipeats.Space
	// Handle is a process-bound view of a Space.
	Handle = ipeats.Handle
	// TupleSpace is the interface implemented by local handles and by
	// the replicated client, over which all algorithms are written.
	TupleSpace = ipeats.TupleSpace
)

// Operations-as-values re-exports: Op values built with OutOp, RdpOp,
// InpOp, CasOp and RdAllOp execute — alone or as an atomic
// multi-operation unit — through TupleSpace.Submit, which returns one
// Result per op. A multi-op submission is all-or-nothing: it executes
// inside one critical section (locally) or one agreement round
// (replicated), each op vetted by the reference monitor against the
// state its predecessors produced, and aborts without effect when an op
// is denied, malformed, or an InpOp finds no match (ErrAborted).
type (
	// Op is one tuple-space operation as a first-class value.
	Op = ipeats.Op
	// Result is the outcome of one submitted operation: matched tuple,
	// found/inserted flags, and formal-field Bindings.
	Result = ipeats.Result
	// DeniedError carries the reference monitor's denial detail; it
	// satisfies errors.Is(err, ErrDenied) on both realisations.
	DeniedError = ipeats.DeniedError
)

// Op constructors (see package peats/internal/peats).
var (
	// OutOp stages the insertion of an entry.
	OutOp = ipeats.OutOp
	// RdpOp stages a non-destructive non-blocking read.
	RdpOp = ipeats.RdpOp
	// InpOp stages a destructive non-blocking read; inside a multi-op
	// submission a miss aborts the whole unit.
	InpOp = ipeats.InpOp
	// CasOp stages the conditional atomic swap.
	CasOp = ipeats.CasOp
	// RdAllOp stages the bulk non-destructive read.
	RdAllOp = ipeats.RdAllOp
)

// ErrDenied is returned when the reference monitor rejects an
// invocation.
var ErrDenied = ipeats.ErrDenied

// ErrAborted is returned (wrapped) when a multi-op submission aborts
// because a destructive read found no match; no operation of the unit
// takes effect.
var ErrAborted = ipeats.ErrAborted

// StoreEngine selects the tuple-storage engine backing a space. The
// zero value selects the default engine (IndexedStore).
type StoreEngine = space.Engine

// Available store engines.
const (
	// SliceStore is the linear-scan reference engine: simplest possible
	// semantics, O(n) matching. Useful as a baseline and for debugging.
	SliceStore StoreEngine = space.EngineSlice
	// IndexedStore is the production engine (the default): tuples are
	// bucketed by arity and hashed on their first field, with insertion
	// order — and therefore match determinism — preserved through
	// monotonic sequence numbers.
	IndexedStore StoreEngine = space.EngineIndexed
	// DurableStore is the persistent engine: the indexed engine wrapped
	// by a write-ahead log that survives crashes (package durable). It
	// needs a data directory — select it with WithDataDir (which
	// implies it), tune it with WithFsync, and Close the space (or Stop
	// the cluster) to flush the log.
	DurableStore StoreEngine = space.EngineDurable
)

// FsyncPolicy selects when the durable engine fsyncs its write-ahead
// log (WithFsync).
type FsyncPolicy = durable.SyncPolicy

// Available fsync policies.
const (
	// FsyncAlways makes every committed operation (or agreement batch)
	// durable before it is acknowledged: maximum safety, one fsync per
	// unit.
	FsyncAlways FsyncPolicy = durable.SyncAlways
	// FsyncInterval is group commit (the default): operations
	// accumulate and one fsync covers the whole window. A crash loses
	// at most the last window, never a torn unit — and a replicated
	// deployment re-fetches the lost tail from its peers.
	FsyncInterval FsyncPolicy = durable.SyncInterval
	// FsyncNever leaves flushing to the operating system.
	FsyncNever FsyncPolicy = durable.SyncNever
)

// Option configures space construction (NewSpace, NewLocalCluster).
type Option func(*options)

type options struct {
	engine          StoreEngine
	shards          int
	batchSize       int
	batchDelay      time.Duration
	pollInterval    time.Duration
	dataDir         string
	fsync           FsyncPolicy
	tentativeWrites *bool
	tentativeReads  *bool
}

// WithStore selects the tuple-storage engine. Both engines implement
// identical deterministic match semantics (enforced by property test),
// so the choice only affects performance; replicas of one cluster may
// even mix engines.
func WithStore(e StoreEngine) Option {
	return func(o *options) { o.engine = e }
}

// WithShards partitions the space into n shards (1 ≤ n ≤
// space.MaxShards), each with its own store instance and lock. Tuples
// route to shards by a hash of their arity and first field, reads and
// writes on different shards run concurrently, and a space-wide
// sequence number keeps match order — and therefore every observable
// result — identical to a single-shard space. The default is 1.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithBatchSize sets the maximum number of client requests the
// replicated cluster's primary orders under one agreement round
// (NewLocalCluster only). At 1, the default, every request runs its
// own three-phase round; above 1, requests arriving while earlier
// batches are in flight are proposed together, multiplying write
// throughput under concurrent load.
func WithBatchSize(n int) Option {
	return func(o *options) { o.batchSize = n }
}

// WithBatchDelay bounds how long the primary holds a non-full batch
// open while earlier batches are in flight (NewLocalCluster only,
// default 2ms). An idle cluster always proposes immediately, so the
// delay never costs latency at low load.
func WithBatchDelay(d time.Duration) Option {
	return func(o *options) { o.batchDelay = d }
}

// WithDataDir selects the durable store engine rooted at dir: every
// mutation is write-ahead logged and the space recovers its contents
// (and, replicated, its execution position) from dir after a crash or
// restart. On NewLocalCluster each replica persists under its own
// subdirectory dir/r<i>. Implies WithStore(DurableStore); combine with
// WithFsync to pick the durability/throughput trade-off, and Close the
// space (Stop the cluster) to flush on the way out.
func WithDataDir(dir string) Option {
	return func(o *options) { o.dataDir = dir }
}

// WithFsync sets the durable engine's fsync policy (default
// FsyncInterval, i.e. group commit). Only meaningful with WithDataDir.
func WithFsync(p FsyncPolicy) Option {
	return func(o *options) { o.fsync = p }
}

// WithPollInterval sets the floor of the jittered exponential backoff
// replicated handles use to poll blocking Rd/In (ClusterSpace only,
// default 5ms; each miss doubles the delay up to the handle's
// PollMaxInterval cap, and a floor at or above the cap polls at the
// constant floor). Lower values trade replica load for wake-up latency.
func WithPollInterval(d time.Duration) Option {
	return func(o *options) { o.pollInterval = d }
}

// WithTentativeWrites toggles acceptance of tentative replies for
// mutating submissions (ClusterSpace only, default on). Replicas
// execute a write the moment its batch is prepared and reply
// tentatively; 2f+1 matching tentative replies prove the result can
// never be revoked, cutting one protocol round off write latency. Pass
// false to wait for the commit-quorum replies instead.
func WithTentativeWrites(on bool) Option {
	return func(o *options) { o.tentativeWrites = &on }
}

// WithTentativeReads is WithTentativeWrites for reads that go through
// total ordering (OrderedReads handles, or read-only fast-path vote
// failures). Default on.
func WithTentativeReads(on bool) Option {
	return func(o *options) { o.tentativeReads = &on }
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// NewSpace returns a local PEATS protected by the given policy. By
// default the space uses the indexed store engine with one shard; pass
// WithStore(SliceStore) for the reference engine, WithShards for a
// partitioned space, and WithDataDir for the durable engine. Unknown
// engines, out-of-range shard counts and durable open failures panic;
// use OpenSpace when the error should be handled (a data directory
// brings real I/O failure modes with it).
func NewSpace(pol Policy, opts ...Option) *Space {
	s, err := OpenSpace(pol, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// OpenSpace is NewSpace returning errors instead of panicking — the
// natural constructor for durable spaces, whose data directory may be
// unreadable, locked or damaged.
func OpenSpace(pol Policy, opts ...Option) (*Space, error) {
	o := buildOptions(opts)
	if !o.durable() {
		return ipeats.NewSharded(pol, o.engine, o.sharedShards())
	}
	if o.dataDir == "" {
		return nil, errors.New("peats: the durable store engine needs WithDataDir")
	}
	db, err := durable.Open(durable.Options{Dir: o.dataDir, Sync: o.fsync})
	if err != nil {
		return nil, err
	}
	raw, err := space.NewShardedFactory(o.sharedShards(), func(int) (space.Store, error) {
		return db.NewStore(), nil
	})
	if err == nil {
		db.StartLoad()
		err = raw.Install(db.Recovered().Tuples)
		db.EndLoad()
	}
	if err != nil {
		db.Close()
		return nil, err
	}
	s := ipeats.Wrap(raw, pol)
	s.AttachCloser(db.Close)
	s.AttachFramer(db)
	return s, nil
}

// durable reports whether the options select the durable engine.
func (o options) durable() bool {
	return o.dataDir != "" || o.engine == DurableStore
}

// sharedShards resolves the shard option's default.
func (o options) sharedShards() int {
	if o.shards <= 0 {
		return 1
	}
	return o.shards
}

// WrapSpace protects an existing raw space with a policy.
func WrapSpace(inner *space.Space, pol Policy) *Space { return ipeats.Wrap(inner, pol) }

// Replication re-exports (Fig. 2 realisation).
type (
	// Cluster is an in-process replicated PEATS deployment.
	Cluster = bft.Cluster
	// RemoteSpace is the client view of a replicated PEATS; it
	// implements TupleSpace.
	RemoteSpace = bft.RemoteSpace
	// Replica is one member of a replicated PEATS group.
	Replica = bft.Replica
	// ReplicaConfig configures a replica (for TCP deployments via
	// cmd/peats-server).
	ReplicaConfig = bft.ReplicaConfig
)

// NewLocalCluster starts an in-process BFT-replicated PEATS with
// n = 3f+1 replicas, each running the reference monitor with the given
// policy. Callers obtain TupleSpace handles with ClusterSpace and must
// Stop the cluster when done. WithStore selects the storage engine and
// WithShards the shard count every replica's space uses; WithDataDir
// makes every replica durable under its own subdirectory (dir/r<i>),
// recovering state and execution position on the next construction.
func NewLocalCluster(f int, pol Policy, opts ...Option) (*Cluster, error) {
	o := buildOptions(opts)
	if o.durable() && o.dataDir == "" {
		return nil, errors.New("peats: the durable store engine needs WithDataDir")
	}
	n := 3*f + 1
	services := make([]bft.Service, n)
	for i := range services {
		var (
			svc *bft.SpaceService
			err error
		)
		if o.durable() {
			var db *durable.DB
			db, err = durable.Open(durable.Options{
				Dir:  filepath.Join(o.dataDir, fmt.Sprintf("r%d", i)),
				Sync: o.fsync,
				// The replicas compact at full checkpoints themselves.
				AutoCompactBytes: -1,
			})
			if err == nil {
				if svc, err = bft.NewDurableSpaceService(pol, db, o.sharedShards()); err != nil {
					db.Close()
				}
			}
		} else {
			svc, err = bft.NewSpaceServiceWithConfig(pol, o.engine, o.sharedShards())
		}
		if err != nil {
			closeServices(services[:i])
			return nil, err
		}
		services[i] = svc
	}
	var copts []bft.ClusterOption
	if o.batchSize > 0 {
		copts = append(copts, bft.WithBatchSize(o.batchSize))
	}
	if o.batchDelay > 0 {
		copts = append(copts, bft.WithBatchDelay(o.batchDelay))
	}
	cl, err := bft.NewCluster(f, services, copts...)
	if err != nil {
		closeServices(services)
		return nil, err
	}
	return cl, nil
}

// closeServices releases the durable engines behind partially
// constructed clusters (failed NewLocalCluster paths).
func closeServices(services []bft.Service) {
	for _, s := range services {
		if c, ok := s.(*bft.SpaceService); ok {
			c.Close()
		}
	}
}

// ClusterSpace returns a TupleSpace handle on the replicated PEATS for
// the given authenticated process identity. WithPollInterval tunes the
// handle's blocking-read polling without reaching into bft.RemoteSpace.
func ClusterSpace(c *Cluster, id ProcessID, opts ...Option) *RemoteSpace {
	o := buildOptions(opts)
	rs := bft.NewRemoteSpace(c.Client(string(id)))
	if o.pollInterval > 0 {
		rs.PollInterval = o.pollInterval
	}
	if o.tentativeWrites != nil {
		rs.TentativeWrites = *o.tentativeWrites
	}
	if o.tentativeReads != nil {
		rs.TentativeReads = *o.tentativeReads
	}
	return rs
}

// Partitioning re-exports (multi-group deployments).
type (
	// ClusterTopology describes a partitioned deployment: the ordered
	// list of replica groups, each owning the slice of the tuple key
	// space the canonical FNV-1a(arity, first-field) rule routes to it.
	ClusterTopology = partition.Topology
	// TopologyGroup is one group of a ClusterTopology.
	TopologyGroup = partition.GroupSpec
	// TopologyReplica is one replica of a TopologyGroup.
	TopologyReplica = partition.ReplicaSpec
	// PartitionedSpace is the TupleSpace handle over a partitioned
	// deployment: single-partition submissions go straight to their
	// owning group, cross-partition submissions run a BFT-agreed
	// two-phase commit, wildcard-first reads fan out and merge.
	PartitionedSpace = partition.Space
)

// partitionMaster is the deterministic attestation master secret of
// in-process partitioned clusters, standing in for a real deployment's
// trusted key setup (see bft.AttestKeyFor).
var partitionMaster = []byte("peats-inproc-partitions")

// PartitionedCluster is an in-process partitioned deployment: one
// BFT-replicated group per entry of the topology, all sharing a
// reference monitor policy. Writes to different partitions are ordered
// by different groups, which is what scales aggregate throughput past
// the single-group agreement ceiling.
type PartitionedCluster struct {
	// Topology describes the deployment; group i of Groups realises
	// Topology.Groups[i].
	Topology *ClusterTopology
	// Groups are the running replica groups, in canonical order.
	Groups []*Cluster
}

// NewPartitionedCluster starts one in-process replica group per entry
// of fs (group i with fault bound fs[i], hence 3·fs[i]+1 replicas),
// every replica running the reference monitor with the given policy.
// The options mirror NewLocalCluster; WithDataDir roots each group
// under its own subdirectory (dir/g<i>/r<j>). Stop the cluster when
// done. Handles come from PartitionedCluster.Space.
func NewPartitionedCluster(fs []int, pol Policy, opts ...Option) (*PartitionedCluster, error) {
	if len(fs) == 0 {
		return nil, errors.New("peats: a partitioned cluster needs at least one group")
	}
	o := buildOptions(opts)
	if o.durable() && o.dataDir == "" {
		return nil, errors.New("peats: the durable store engine needs WithDataDir")
	}
	topo := &ClusterTopology{}
	for gi, f := range fs {
		if f < 0 {
			return nil, fmt.Errorf("peats: group %d with negative fault bound", gi)
		}
		g := TopologyGroup{ID: fmt.Sprintf("g%d", gi), F: f}
		for j := 0; j < 3*f+1; j++ {
			g.Replicas = append(g.Replicas, TopologyReplica{ID: fmt.Sprintf("r%d", j)})
		}
		topo.Groups = append(topo.Groups, g)
	}
	dir := topo.Directory(partitionMaster)

	pc := &PartitionedCluster{Topology: topo}
	for gi, f := range fs {
		gid := topo.Groups[gi].ID
		n := 3*f + 1
		services := make([]bft.Service, n)
		var err error
		for i := range services {
			var svc *bft.SpaceService
			if o.durable() {
				var db *durable.DB
				db, err = durable.Open(durable.Options{
					Dir:              filepath.Join(o.dataDir, gid, fmt.Sprintf("r%d", i)),
					Sync:             o.fsync,
					AutoCompactBytes: -1,
				})
				if err == nil {
					if svc, err = bft.NewDurableSpaceService(pol, db, o.sharedShards()); err != nil {
						db.Close()
					}
				}
			} else {
				svc, err = bft.NewSpaceServiceWithConfig(pol, o.engine, o.sharedShards())
			}
			if err != nil {
				closeServices(services[:i])
				pc.Stop()
				return nil, err
			}
			svc.EnablePartition(gid, dir)
			services[i] = svc
		}
		copts := []bft.ClusterOption{bft.WithGroupIdentity(gid, partitionMaster)}
		if o.batchSize > 0 {
			copts = append(copts, bft.WithBatchSize(o.batchSize))
		}
		if o.batchDelay > 0 {
			copts = append(copts, bft.WithBatchDelay(o.batchDelay))
		}
		cl, err := bft.NewCluster(f, services, copts...)
		if err != nil {
			closeServices(services)
			pc.Stop()
			return nil, err
		}
		pc.Groups = append(pc.Groups, cl)
	}
	return pc, nil
}

// Stop shuts down every group.
func (pc *PartitionedCluster) Stop() {
	for _, c := range pc.Groups {
		c.Stop()
	}
}

// Space returns a partition-routing TupleSpace handle for the given
// authenticated process identity: one BFT client per group, all bound
// to the same principal. WithPollInterval tunes blocking-read polling.
func (pc *PartitionedCluster) Space(id ProcessID, opts ...Option) (*PartitionedSpace, error) {
	o := buildOptions(opts)
	groups := make([]partition.Group, len(pc.Groups))
	for i, c := range pc.Groups {
		groups[i] = partition.Group{ID: pc.Topology.Groups[i].ID, Client: c.Client(string(id))}
	}
	sp, err := partition.NewSpace(groups)
	if err != nil {
		return nil, err
	}
	if o.pollInterval > 0 {
		sp.PollInterval = o.pollInterval
	}
	return sp, nil
}
