package peats

import (
	"context"
	"errors"
	"testing"
	"time"

	"peats/internal/consensus"
	"peats/internal/policylang"
)

func TestFacadeLocalSpace(t *testing.T) {
	s := NewSpace(AllowAll())
	h := s.Handle("p1")
	ctx := context.Background()

	if err := h.Out(ctx, T(Str("GREETING"), Str("hello"), Int(1), Bool(true))); err != nil {
		t.Fatal(err)
	}
	got, ok, err := h.Rdp(ctx, T(Str("GREETING"), Formal("msg"), Any(), Any()))
	if err != nil || !ok {
		t.Fatalf("rdp: %v %v", ok, err)
	}
	binds, matched := Match(got, T(Str("GREETING"), Formal("msg"), Any(), Any()))
	if !matched {
		t.Fatal("re-match failed")
	}
	if msg, _ := binds["msg"].StrValue(); msg != "hello" {
		t.Errorf("binding = %v", binds["msg"])
	}
}

func TestFacadePolicyDenial(t *testing.T) {
	s := NewSpace(NewPolicy()) // deny everything
	err := s.Handle("p").Out(context.Background(), T(Int(1)))
	if !errors.Is(err, ErrDenied) {
		t.Errorf("err = %v, want ErrDenied", err)
	}
}

func TestFacadeReplicatedCluster(t *testing.T) {
	cluster, err := NewLocalCluster(1, consensus.WeakPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Weak consensus through the public facade over 4 BFT replicas.
	a := consensus.NewWeak(ClusterSpace(cluster, "p1"))
	b := consensus.NewWeak(ClusterSpace(cluster, "p2"))
	da, err := a.Propose(ctx, Int(42))
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Propose(ctx, Int(43))
	if err != nil {
		t.Fatal(err)
	}
	if !da.Equal(db) {
		t.Errorf("disagreement across replicated clients: %v vs %v", da, db)
	}
}

func TestFacadeWithPolicyLanguage(t *testing.T) {
	// A DSL-compiled policy through the public facade.
	pol, err := policylang.Compile(`
Rout: allow out <"NOTE", @invoker, str>
Rrdp: allow rdp
`)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSpace(pol)
	ctx := context.Background()
	if err := s.Handle("alice").Out(ctx, T(Str("NOTE"), Str("alice"), Str("hi"))); err != nil {
		t.Fatal(err)
	}
	err = s.Handle("bob").Out(ctx, T(Str("NOTE"), Str("alice"), Str("forged")))
	if !errors.Is(err, ErrDenied) {
		t.Errorf("forged note err = %v, want ErrDenied", err)
	}
}

// TestFacadeSubmitTx exercises the ops-as-values API end to end through
// the public surface, locally and replicated, including the poll-floor
// option on cluster handles.
func TestFacadeSubmitTx(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Local: multi-key test-and-set — claim two keys or neither.
	s := NewSpace(AllowAll(), WithShards(8))
	h := s.Handle("p")
	for _, k := range []string{"k1", "k2"} {
		if err := h.Out(ctx, T(Str("free"), Str(k))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Submit(ctx,
		InpOp(T(Str("free"), Str("k1"))),
		InpOp(T(Str("free"), Str("k2"))),
		OutOp(T(Str("lock"), Str("p"))),
	); err != nil {
		t.Fatal(err)
	}
	// Second claim aborts atomically — the lock tuple is not duplicated.
	_, err := h.Submit(ctx,
		InpOp(T(Str("free"), Str("k1"))),
		InpOp(T(Str("free"), Str("k2"))),
		OutOp(T(Str("lock"), Str("p"))),
	)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("second claim err = %v, want ErrAborted", err)
	}
	if locks, _ := h.RdAll(ctx, T(Str("lock"), Any())); len(locks) != 1 {
		t.Fatalf("lock tuples = %v, want 1", locks)
	}

	// Replicated, through ClusterSpace with a tuned poll floor.
	cluster, err := NewLocalCluster(1, AllowAll(), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ts := ClusterSpace(cluster, "p1", WithPollInterval(time.Millisecond))
	if ts.PollInterval != time.Millisecond {
		t.Errorf("WithPollInterval not applied: %v", ts.PollInterval)
	}
	if err := ts.Out(ctx, T(Str("Q"), Int(1))); err != nil {
		t.Fatal(err)
	}
	res, err := ts.Submit(ctx,
		InpOp(T(Str("Q"), Formal("v"))),
		OutOp(T(Str("Q2"), Int(1))),
	)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res[0].Bindings["v"].IntValue(); v != 1 {
		t.Errorf("bindings = %v", res[0].Bindings)
	}
	if _, ok, _ := ts.Rdp(ctx, T(Str("Q2"), Any())); !ok {
		t.Error("replicated transfer lost the tuple")
	}
}

// TestFacadeStoreEngines exercises the WithStore option end to end:
// each engine drives a local space through the full monitor path, and
// a replicated cluster runs on the reference engine, proving the
// engine choice threads through every layer.
func TestFacadeStoreEngines(t *testing.T) {
	ctx := context.Background()
	for _, eng := range []StoreEngine{SliceStore, IndexedStore} {
		s := NewSpace(AllowAll(), WithStore(eng))
		h := s.Handle("p1")
		for i := int64(0); i < 3; i++ {
			if err := h.Out(ctx, T(Str("E"), Int(i))); err != nil {
				t.Fatalf("%s: out: %v", eng, err)
			}
		}
		// First match in insertion order, identically on both engines.
		got, ok, err := h.Inp(ctx, T(Str("E"), Any()))
		if err != nil || !ok {
			t.Fatalf("%s: inp: %v %v", eng, ok, err)
		}
		if v, _ := got.Field(1).IntValue(); v != 0 {
			t.Errorf("%s: inp returned %v, want first inserted", eng, got)
		}
		if s.Inner().Engine() != eng {
			t.Errorf("space reports engine %q, want %q", s.Inner().Engine(), eng)
		}
	}

	if NewSpace(AllowAll()).Inner().Engine() != IndexedStore {
		t.Error("default engine is not the indexed store")
	}

	cluster, err := NewLocalCluster(1, AllowAll(), WithStore(SliceStore))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	rs := ClusterSpace(cluster, "p1")
	if err := rs.Out(cctx, T(Str("R"), Int(7))); err != nil {
		t.Fatal(err)
	}
	got, ok, err := rs.Rdp(cctx, T(Str("R"), Any()))
	if err != nil || !ok {
		t.Fatalf("replicated rdp over slice engine: %v %v", ok, err)
	}
	if v, _ := got.Field(1).IntValue(); v != 7 {
		t.Errorf("replicated rdp = %v", got)
	}
}
