package peats_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"peats"
)

// TestDurableLocalSpacePersistsAcrossReopen pins the public durable
// surface: a space opened with WithDataDir recovers its contents after
// Close and reopen.
func TestDurableLocalSpacePersistsAcrossReopen(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "space")

	s, err := peats.OpenSpace(peats.AllowAll(), peats.WithDataDir(dir),
		peats.WithFsync(peats.FsyncAlways), peats.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Inner().Engine() != peats.DurableStore {
		t.Fatalf("engine %q, want %q", s.Inner().Engine(), peats.DurableStore)
	}
	h := s.Handle("p1")
	for i := int64(0); i < 10; i++ {
		if err := h.Out(ctx, peats.T(peats.Str("persist"), peats.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := h.Inp(ctx, peats.T(peats.Str("persist"), peats.Int(0))); err != nil || !ok {
		t.Fatalf("inp: %v %v", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := peats.OpenSpace(peats.AllowAll(), peats.WithDataDir(dir), peats.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2 := s2.Handle("p1")
	got, ok, err := h2.Rdp(ctx, peats.T(peats.Str("persist"), peats.Formal("v")))
	if err != nil || !ok {
		t.Fatalf("rdp after reopen: %v %v", ok, err)
	}
	if v, _ := got.Field(1).IntValue(); v != 1 {
		t.Fatalf("first recovered match %v, want value 1", got)
	}
	if n := s2.Inner().Len(); n != 9 {
		t.Fatalf("recovered %d tuples, want 9", n)
	}

	// The durable engine demands a data directory.
	if _, err := peats.OpenSpace(peats.AllowAll(), peats.WithStore(peats.DurableStore)); err == nil {
		t.Fatal("OpenSpace accepted the durable engine without a data dir")
	}
}

// TestDurableClusterPersistsAcrossReopen pins the replicated public
// surface: a local cluster built with WithDataDir serves its
// pre-restart state after Stop and reconstruction over the same
// directory.
func TestDurableClusterPersistsAcrossReopen(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	dir := t.TempDir()

	cl, err := peats.NewLocalCluster(1, peats.AllowAll(), peats.WithDataDir(dir), peats.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := peats.ClusterSpace(cl, "alice")
	for i := int64(0); i < 20; i++ {
		if err := ts.Out(ctx, peats.T(peats.Str("C"), peats.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	cl.Stop()

	cl2, err := peats.NewLocalCluster(1, peats.AllowAll(), peats.WithDataDir(dir), peats.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Stop()
	// A fresh client identity: "alice"'s at-most-once table survived
	// the restart with everything else.
	ts2 := peats.ClusterSpace(cl2, "bob")
	got, ok, err := ts2.Rdp(ctx, peats.T(peats.Str("C"), peats.Formal("v")))
	if err != nil || !ok {
		t.Fatalf("rdp after cluster restart: %v %v", ok, err)
	}
	if v, _ := got.Field(1).IntValue(); v != 0 {
		t.Fatalf("first recovered match %v, want value 0", got)
	}
	if err := ts2.Out(ctx, peats.T(peats.Str("C2"), peats.Int(1))); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}
