package peats_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"peats"
)

// TestDurableLocalSpacePersistsAcrossReopen pins the public durable
// surface: a space opened with WithDataDir recovers its contents after
// Close and reopen.
func TestDurableLocalSpacePersistsAcrossReopen(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "space")

	s, err := peats.OpenSpace(peats.AllowAll(), peats.WithDataDir(dir),
		peats.WithFsync(peats.FsyncAlways), peats.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Inner().Engine() != peats.DurableStore {
		t.Fatalf("engine %q, want %q", s.Inner().Engine(), peats.DurableStore)
	}
	h := s.Handle("p1")
	for i := int64(0); i < 10; i++ {
		if err := h.Out(ctx, peats.T(peats.Str("persist"), peats.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := h.Inp(ctx, peats.T(peats.Str("persist"), peats.Int(0))); err != nil || !ok {
		t.Fatalf("inp: %v %v", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := peats.OpenSpace(peats.AllowAll(), peats.WithDataDir(dir), peats.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2 := s2.Handle("p1")
	got, ok, err := h2.Rdp(ctx, peats.T(peats.Str("persist"), peats.Formal("v")))
	if err != nil || !ok {
		t.Fatalf("rdp after reopen: %v %v", ok, err)
	}
	if v, _ := got.Field(1).IntValue(); v != 1 {
		t.Fatalf("first recovered match %v, want value 1", got)
	}
	if n := s2.Inner().Len(); n != 9 {
		t.Fatalf("recovered %d tuples, want 9", n)
	}

	// The durable engine demands a data directory.
	if _, err := peats.OpenSpace(peats.AllowAll(), peats.WithStore(peats.DurableStore)); err == nil {
		t.Fatal("OpenSpace accepted the durable engine without a data dir")
	}
}

// TestDurableLocalSubmitAtomicAcrossReopen pins the framed local
// transaction path: a multi-op Submit on a durable space journals as
// one WAL unit, so the whole transaction — including its destructive
// reads — survives Close and reopen together.
func TestDurableLocalSubmitAtomicAcrossReopen(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "space")

	s, err := peats.OpenSpace(peats.AllowAll(), peats.WithDataDir(dir),
		peats.WithFsync(peats.FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handle("p1")
	bal := func(who string, v int64) peats.Tuple {
		return peats.T(peats.Str("bal"), peats.Str(who), peats.Int(v))
	}
	if err := h.Out(ctx, bal("a", 10)); err != nil {
		t.Fatal(err)
	}
	if err := h.Out(ctx, bal("b", 5)); err != nil {
		t.Fatal(err)
	}
	// Transfer 3 from a to b as one atomic, singly-framed transaction.
	res, err := h.Submit(ctx,
		peats.InpOp(peats.T(peats.Str("bal"), peats.Str("a"), peats.Formal("v"))),
		peats.OutOp(bal("a", 7)),
		peats.InpOp(peats.T(peats.Str("bal"), peats.Str("b"), peats.Formal("v"))),
		peats.OutOp(bal("b", 8)),
	)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if len(res) != 4 {
		t.Fatalf("submit returned %d results, want 4", len(res))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := peats.OpenSpace(peats.AllowAll(), peats.WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	h2 := s2.Handle("p1")
	for who, want := range map[string]int64{"a": 7, "b": 8} {
		got, ok, err := h2.Rdp(ctx, peats.T(peats.Str("bal"), peats.Str(who), peats.Formal("v")))
		if err != nil || !ok {
			t.Fatalf("rdp %s after reopen: %v %v", who, ok, err)
		}
		if v, _ := got.Field(2).IntValue(); v != want {
			t.Fatalf("balance %s recovered as %v, want %d", who, got, want)
		}
	}
	if n := s2.Inner().Len(); n != 2 {
		t.Fatalf("recovered %d tuples, want 2", n)
	}
}

// TestDurableClusterPersistsAcrossReopen pins the replicated public
// surface: a local cluster built with WithDataDir serves its
// pre-restart state after Stop and reconstruction over the same
// directory.
func TestDurableClusterPersistsAcrossReopen(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	dir := t.TempDir()

	cl, err := peats.NewLocalCluster(1, peats.AllowAll(), peats.WithDataDir(dir), peats.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := peats.ClusterSpace(cl, "alice")
	for i := int64(0); i < 20; i++ {
		if err := ts.Out(ctx, peats.T(peats.Str("C"), peats.Int(i))); err != nil {
			t.Fatal(err)
		}
	}
	cl.Stop()

	cl2, err := peats.NewLocalCluster(1, peats.AllowAll(), peats.WithDataDir(dir), peats.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Stop()
	// A fresh client identity: "alice"'s at-most-once table survived
	// the restart with everything else.
	ts2 := peats.ClusterSpace(cl2, "bob")
	got, ok, err := ts2.Rdp(ctx, peats.T(peats.Str("C"), peats.Formal("v")))
	if err != nil || !ok {
		t.Fatalf("rdp after cluster restart: %v %v", ok, err)
	}
	if v, _ := got.Field(1).IntValue(); v != 0 {
		t.Fatalf("first recovered match %v, want value 0", got)
	}
	if err := ts2.Out(ctx, peats.T(peats.Str("C2"), peats.Int(1))); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}
