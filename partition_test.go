package peats

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// partitionCtx bounds a partition test step without hanging broken runs.
func partitionCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// partGen produces random keyed and wildcard-first operations over a
// small domain, so group collisions, cross-group submissions, matches
// and misses are all frequent. Everything derives from a seeded
// rand.Rand, so failures reproduce by seed.
type partGen struct {
	rng *rand.Rand
}

// key returns a concrete first field from a small pool; eight keys over
// four groups make every group populated and multi-group submissions
// common.
func (g *partGen) key() Field {
	return Str(fmt.Sprintf("k%d", g.rng.Intn(8)))
}

func (g *partGen) tail(defined bool) Field {
	if !defined {
		if g.rng.Intn(2) == 0 {
			return Any()
		}
		return Formal(fmt.Sprintf("v%d", g.rng.Intn(3)))
	}
	if g.rng.Intn(2) == 0 {
		return Int(int64(g.rng.Intn(3)))
	}
	return Str(string(rune('A' + g.rng.Intn(2))))
}

// entry returns a fully defined tuple of arity 1..3 with a pooled key.
func (g *partGen) entry() Tuple {
	fields := []Field{g.key()}
	for n := g.rng.Intn(3); n > 0; n-- {
		fields = append(fields, g.tail(true))
	}
	return T(fields...)
}

// keyedTemplate returns a template with a concrete pooled first field,
// so it routes to exactly one partition.
func (g *partGen) keyedTemplate() Tuple {
	fields := []Field{g.key()}
	for n := g.rng.Intn(3); n > 0; n-- {
		fields = append(fields, g.tail(g.rng.Intn(3) != 0))
	}
	return T(fields...)
}

// wildcardTemplate returns a template with an undefined first field,
// which matches in every partition and must fan out.
func (g *partGen) wildcardTemplate() Tuple {
	fields := []Field{g.tail(false)}
	for n := g.rng.Intn(3); n > 0; n-- {
		fields = append(fields, g.tail(g.rng.Intn(3) != 0))
	}
	return T(fields...)
}

// casPair returns a template/entry pair that routes to one partition:
// same arity, same concrete first field — the shape the partitioned
// space requires of cas.
func (g *partGen) casPair() (tmpl, entry Tuple) {
	k := g.key()
	arity := 1 + g.rng.Intn(3)
	tf := []Field{k}
	ef := []Field{k}
	for i := 1; i < arity; i++ {
		tf = append(tf, g.tail(g.rng.Intn(3) != 0))
		ef = append(ef, g.tail(true))
	}
	return T(tf...), T(ef...)
}

// submission returns 2..4 keyed ops forming one atomic unit; keys are
// drawn independently, so units regularly span several partitions and
// regularly abort on an inp miss.
func (g *partGen) submission() []Op {
	n := 2 + g.rng.Intn(3)
	ops := make([]Op, n)
	for i := range ops {
		switch g.rng.Intn(5) {
		case 0, 1:
			ops[i] = OutOp(g.entry())
		case 2:
			ops[i] = RdpOp(g.keyedTemplate())
		case 3:
			ops[i] = InpOp(g.keyedTemplate())
		default:
			tmpl, entry := g.casPair()
			ops[i] = CasOp(tmpl, entry)
		}
	}
	return ops
}

// tupleBag builds a multiset fingerprint of a tuple list.
func tupleBag(ts []Tuple) map[string]int {
	bag := make(map[string]int, len(ts))
	for _, t := range ts {
		bag[fmt.Sprintf("%v", t)]++
	}
	return bag
}

func sameBag(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	ba, bb := tupleBag(a), tupleBag(b)
	for k, n := range ba {
		if bb[k] != n {
			return false
		}
	}
	return true
}

// errClass collapses an error to the classes the parity contract
// compares: nil, denied, aborted, or other.
func errClass(err error) string {
	switch {
	case err == nil:
		return "nil"
	case errors.Is(err, ErrDenied):
		return "denied"
	case errors.Is(err, ErrAborted):
		return "aborted"
	default:
		return "other"
	}
}

// drivePartitionParity runs the same randomized operation sequence
// through a reference single-space handle and a partitioned space and
// fails on the first observable divergence. Keyed operations must agree
// exactly (a keyed template's matches all live in one group, inserted
// in submission order, so even the match choice is determined);
// wildcard reads must agree up to the documented group-major merge:
// RdAll as a multiset, Rdp on found-ness and membership.
func drivePartitionParity(t *testing.T, seed int64, steps int, ref TupleSpace, part TupleSpace) {
	t.Helper()
	ctx := partitionCtx(t)
	g := &partGen{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < steps; i++ {
		switch g.rng.Intn(10) {
		case 0, 1, 2:
			e := g.entry()
			if err1, err2 := ref.Out(ctx, e), part.Out(ctx, e); errClass(err1) != errClass(err2) {
				t.Fatalf("seed %d step %d out: %v vs %v", seed, i, err1, err2)
			}
		case 3:
			tmpl := g.keyedTemplate()
			ta, oka, err1 := ref.Rdp(ctx, tmpl)
			tb, okb, err2 := part.Rdp(ctx, tmpl)
			if err1 != nil || err2 != nil || oka != okb || (oka && !ta.Equal(tb)) {
				t.Fatalf("seed %d step %d rdp %v: %v/%v/%v vs %v/%v/%v",
					seed, i, tmpl, ta, oka, err1, tb, okb, err2)
			}
		case 4:
			tmpl := g.keyedTemplate()
			ta, oka, err1 := ref.Inp(ctx, tmpl)
			tb, okb, err2 := part.Inp(ctx, tmpl)
			if err1 != nil || err2 != nil || oka != okb || (oka && !ta.Equal(tb)) {
				t.Fatalf("seed %d step %d inp %v: %v/%v/%v vs %v/%v/%v",
					seed, i, tmpl, ta, oka, err1, tb, okb, err2)
			}
		case 5:
			tmpl, entry := g.casPair()
			insA, mA, err1 := ref.Cas(ctx, tmpl, entry)
			insB, mB, err2 := part.Cas(ctx, tmpl, entry)
			if err1 != nil || err2 != nil || insA != insB || !mA.Equal(mB) {
				t.Fatalf("seed %d step %d cas: %v/%v/%v vs %v/%v/%v",
					seed, i, insA, mA, err1, insB, mB, err2)
			}
		case 6:
			tmpl := g.keyedTemplate()
			la, err1 := ref.RdAll(ctx, tmpl)
			lb, err2 := part.RdAll(ctx, tmpl)
			if err1 != nil || err2 != nil || len(la) != len(lb) {
				t.Fatalf("seed %d step %d rdall %v: %d/%v vs %d/%v",
					seed, i, tmpl, len(la), err1, len(lb), err2)
			}
			for j := range la {
				if !la[j].Equal(lb[j]) {
					t.Fatalf("seed %d step %d rdall[%d]: %v vs %v", seed, i, j, la[j], lb[j])
				}
			}
		case 7:
			// Wildcard fan-out reads: RdAll merges group-major, so order
			// may differ from the single space — the multiset must not.
			tmpl := g.wildcardTemplate()
			la, err1 := ref.RdAll(ctx, tmpl)
			lb, err2 := part.RdAll(ctx, tmpl)
			if err1 != nil || err2 != nil || !sameBag(la, lb) {
				t.Fatalf("seed %d step %d wildcard rdall %v: %v (%v) vs %v (%v)",
					seed, i, tmpl, la, err1, lb, err2)
			}
		case 8:
			tmpl := g.wildcardTemplate()
			ta, oka, err1 := ref.Rdp(ctx, tmpl)
			tb, okb, err2 := part.Rdp(ctx, tmpl)
			if err1 != nil || err2 != nil || oka != okb {
				t.Fatalf("seed %d step %d wildcard rdp %v: %v/%v/%v vs %v/%v/%v",
					seed, i, tmpl, ta, oka, err1, tb, okb, err2)
			}
			if okb {
				// The partitioned pick is the first group's earliest match —
				// any member of the full match set is a correct rdp answer.
				all, err := ref.RdAll(ctx, tmpl)
				if err != nil || tupleBag(all)[fmt.Sprintf("%v", tb)] == 0 {
					t.Fatalf("seed %d step %d wildcard rdp: %v not in match set %v (%v)",
						seed, i, tb, all, err)
				}
			}
		default:
			// Atomic multi-op submissions, regularly spanning partitions.
			ops := g.submission()
			ra, err1 := ref.Submit(ctx, ops...)
			rb, err2 := part.Submit(ctx, ops...)
			if errClass(err1) != errClass(err2) {
				t.Fatalf("seed %d step %d submit %v: err %v vs %v", seed, i, ops, err1, err2)
			}
			if len(ra) != len(rb) {
				t.Fatalf("seed %d step %d submit %v: %d results vs %d (%v / %v)",
					seed, i, ops, len(ra), len(rb), ra, rb)
			}
			for j := range ra {
				if ra[j].Found != rb[j].Found || ra[j].Inserted != rb[j].Inserted ||
					!ra[j].Tuple.Equal(rb[j].Tuple) {
					t.Fatalf("seed %d step %d submit result[%d]: %+v vs %+v",
						seed, i, j, ra[j], rb[j])
				}
			}
		}
	}
	// Final deep check: the two spaces hold the same multiset of tuples
	// at every arity the generator produces.
	for arity := 1; arity <= 3; arity++ {
		fields := make([]Field, arity)
		for i := range fields {
			fields[i] = Any()
		}
		tmpl := T(fields...)
		la, err1 := ref.RdAll(partitionCtx(t), tmpl)
		lb, err2 := part.RdAll(partitionCtx(t), tmpl)
		if err1 != nil || err2 != nil || !sameBag(la, lb) {
			t.Fatalf("seed %d final arity %d: %d tuples vs %d (%v / %v)",
				seed, arity, len(la), len(lb), err1, err2)
		}
	}
}

// TestPartitionParity holds a four-group partitioned deployment
// observationally equivalent to a single tuple space across both store
// engines and shard counts {1, 4}: partitioning is a deployment choice,
// not a semantic one.
func TestPartitionParity(t *testing.T) {
	for _, engine := range []StoreEngine{SliceStore, IndexedStore} {
		for _, shards := range []int{1, 4} {
			engine, shards := engine, shards
			t.Run(fmt.Sprintf("%s/shards=%d", engine, shards), func(t *testing.T) {
				t.Parallel()
				pc, err := NewPartitionedCluster([]int{0, 0, 0, 0}, AllowAll(),
					WithStore(engine), WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				defer pc.Stop()
				part, err := pc.Space("p1")
				if err != nil {
					t.Fatal(err)
				}
				for seed := int64(0); seed < 2; seed++ {
					ref := NewSpace(AllowAll()).Handle("p1")
					drivePartitionParity(t, seed, 130, ref, part)
					// Drain the partitioned space between seeds so both
					// sides restart empty.
					for arity := 1; arity <= 3; arity++ {
						fields := make([]Field, arity)
						for i := range fields {
							fields[i] = Any()
						}
						for {
							_, ok, err := part.Inp(partitionCtx(t), T(fields...))
							if err != nil {
								t.Fatal(err)
							}
							if !ok {
								break
							}
						}
					}
				}
			})
		}
	}
}

// TestPartitionSingleGroup pins the M=1 degenerate case: a partitioned
// cluster of one group is exactly a single-group deployment — every
// submission forwards unchanged, wildcards included.
func TestPartitionSingleGroup(t *testing.T) {
	pc, err := NewPartitionedCluster([]int{0}, AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Stop()
	part, err := pc.Space("p1")
	if err != nil {
		t.Fatal(err)
	}
	ref := NewSpace(AllowAll()).Handle("p1")
	drivePartitionParity(t, 77, 150, ref, part)
}

// TestPartitionCrossGroupAtomicity pins the two-phase path directly:
// a submission spanning two groups either applies everywhere or
// nowhere, and a mid-unit inp miss rolls the whole unit back.
func TestPartitionCrossGroupAtomicity(t *testing.T) {
	pc, err := NewPartitionedCluster([]int{0, 0}, AllowAll())
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Stop()
	part, err := pc.Space("p1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := partitionCtx(t)

	// Find two keys whose arity-2 tuples are owned by different groups
	// (routing hashes arity and first field).
	keyA, keyB := "", ""
	for i := 0; i < 64 && (keyA == "" || keyB == ""); i++ {
		k := fmt.Sprintf("k%d", i)
		switch pc.Topology.RouteEntry(T(Str(k), Int(0))) {
		case 0:
			if keyA == "" {
				keyA = k
			}
		case 1:
			if keyB == "" {
				keyB = k
			}
		}
	}
	if keyA == "" || keyB == "" {
		t.Fatal("could not find keys for both groups")
	}

	// Commit: two outs, one per group, in one unit.
	if _, err := part.Submit(ctx, OutOp(T(Str(keyA), Int(1))), OutOp(T(Str(keyB), Int(2)))); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := part.Rdp(ctx, T(Str(keyA), Any())); err != nil || !ok {
		t.Fatalf("group-0 half missing after commit: %v %v", ok, err)
	}
	if _, ok, err := part.Rdp(ctx, T(Str(keyB), Any())); err != nil || !ok {
		t.Fatalf("group-1 half missing after commit: %v %v", ok, err)
	}

	// Abort: an out to one group plus an inp miss at the other — the out
	// must not survive the abort.
	_, err = part.Submit(ctx,
		OutOp(T(Str(keyA), Str("doomed"))),
		InpOp(T(Str(keyB), Str("no-such-tuple"))))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if _, ok, _ := part.Rdp(ctx, T(Str(keyA), Str("doomed"))); ok {
		t.Fatal("aborted unit's out leaked into group 0")
	}

	// The consumed-by-nobody check: the committed tuples are still there
	// and consumable exactly once.
	if _, ok, err := part.Inp(ctx, T(Str(keyA), Int(1))); err != nil || !ok {
		t.Fatalf("committed tuple unconsumable: %v %v", ok, err)
	}
	if _, ok, _ := part.Inp(ctx, T(Str(keyA), Int(1))); ok {
		t.Fatal("committed tuple consumed twice")
	}
}
