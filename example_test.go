package peats_test

import (
	"context"
	"errors"
	"fmt"

	"peats"
	"peats/internal/consensus"
	"peats/internal/policylang"
	"peats/internal/universal"
)

// Tuple-space basics: insert, match with wildcards and formal fields.
func Example() {
	s := peats.NewSpace(peats.AllowAll())
	h := s.Handle("p1")
	ctx := context.Background()

	_ = h.Out(ctx, peats.T(peats.Str("JOB"), peats.Int(7), peats.Str("build")))
	got, _, _ := h.Rdp(ctx, peats.T(peats.Str("JOB"), peats.Formal("id"), peats.Any()))
	fmt.Println(got)
	// Output: <"JOB", 7, "build">
}

// Operations as values: Submit executes a list of ops as one atomic,
// monitor-vetted unit. The consume-and-republish pair below moves a
// tuple between queues in a single step — if the InpOp missed, the
// whole unit would abort (peats.ErrAborted) and the OutOp would never
// happen.
func ExampleHandle_Submit() {
	s := peats.NewSpace(peats.AllowAll())
	h := s.Handle("worker")
	ctx := context.Background()

	_ = h.Out(ctx, peats.T(peats.Str("pending"), peats.Str("job-1")))
	res, err := h.Submit(ctx,
		peats.InpOp(peats.T(peats.Str("pending"), peats.Formal("job"))),
		peats.OutOp(peats.T(peats.Str("active"), peats.Str("job-1"), peats.Str("worker"))),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	job, _ := res[0].Bindings["job"].StrValue()
	fmt.Println("moved:", job)

	// Replaying the move aborts atomically: the tuple is gone.
	_, err = h.Submit(ctx,
		peats.InpOp(peats.T(peats.Str("pending"), peats.Formal("job"))),
		peats.OutOp(peats.T(peats.Str("active"), peats.Str("job-1"), peats.Str("worker"))),
	)
	fmt.Println("replay aborted:", errors.Is(err, peats.ErrAborted))
	// Output:
	// moved: job-1
	// replay aborted: true
}

// Weak Byzantine consensus (paper Alg. 1): the first cas wins, later
// proposers adopt the decision, and the Fig. 3 policy stops everything
// else.
func ExampleNewSpace_weakConsensus() {
	s := peats.NewSpace(consensus.WeakPolicy())
	ctx := context.Background()

	d1, _ := consensus.NewWeak(s.Handle("p1")).Propose(ctx, peats.Int(42))
	d2, _ := consensus.NewWeak(s.Handle("p2")).Propose(ctx, peats.Int(99))
	fmt.Println(d1.Equal(d2))

	// A Byzantine process cannot erase the decision: the policy admits
	// no inp at all.
	_, _, err := s.Handle("mallory").Inp(ctx, peats.T(peats.Any(), peats.Any()))
	fmt.Println(errors.Is(err, peats.ErrDenied))
	// Output:
	// true
	// true
}

// Policies can be written as text and compiled (the paper §4's generic
// policy enforcer).
func ExampleNewPolicy_fromText() {
	pol, err := policylang.Compile(`
Rpost: allow out <"NOTE", @invoker, str>
Rread: allow rdp
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	s := peats.NewSpace(pol)
	ctx := context.Background()

	fmt.Println(s.Handle("ada").Out(ctx, peats.T(peats.Str("NOTE"), peats.Str("ada"), peats.Str("hi"))))
	err = s.Handle("bob").Out(ctx, peats.T(peats.Str("NOTE"), peats.Str("ada"), peats.Str("forged")))
	fmt.Println(errors.Is(err, peats.ErrDenied))
	// Output:
	// <nil>
	// true
}

// A partitioned deployment shards the tuple space across independent
// BFT replica groups — here two in-process groups of one replica each
// (f=0). The handle routes every operation to the group owning its
// (arity, first-field) hash: keyed operations cost one group's
// agreement, and a submission spanning groups runs as a BFT-agreed
// two-phase commit, so it still executes atomically.
func ExampleNewPartitionedCluster() {
	pc, err := peats.NewPartitionedCluster([]int{0, 0}, peats.AllowAll())
	if err != nil {
		fmt.Println(err)
		return
	}
	defer pc.Stop()
	sp, _ := pc.Space("p1")
	ctx := context.Background()

	// "user" tuples live in group g0, "order" tuples in g1.
	_ = sp.Out(ctx, peats.T(peats.Str("user"), peats.Int(7)))
	_ = sp.Out(ctx, peats.T(peats.Str("order"), peats.Int(99)))

	t, _, _ := sp.Rdp(ctx, peats.T(peats.Str("user"), peats.Any()))
	fmt.Println(t)

	// A wildcard-first template fans out to every group and merges the
	// matches in canonical group order.
	all, _ := sp.RdAll(ctx, peats.T(peats.Any(), peats.Any()))
	fmt.Println(len(all), "tuples across both groups")

	// Consuming one tuple from each group is atomic: both inps commit,
	// or — had either missed — neither would.
	_, err = sp.Submit(ctx,
		peats.InpOp(peats.T(peats.Str("user"), peats.Any())),
		peats.InpOp(peats.T(peats.Str("order"), peats.Any())),
	)
	fmt.Println("cross-partition submit:", err)
	// Output:
	// <"user", 7>
	// 2 tuples across both groups
	// cross-partition submit: <nil>
}

// The lock-free universal construction (paper Alg. 3) emulates any
// deterministic object — here a shared counter.
func ExampleNewSpace_universalConstruction() {
	s := peats.NewSpace(universal.LockFreePolicy())
	ctx := context.Background()

	u := universal.NewLockFree(s.Handle("p1"), universal.CounterType{})
	for i := 0; i < 3; i++ {
		r, _ := u.Invoke(ctx, universal.CounterInc())
		v, _ := universal.ReplyValue(r)
		fmt.Println(v)
	}
	// Output:
	// 0
	// 1
	// 2
}
