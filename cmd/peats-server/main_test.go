package main

import (
	"testing"

	"peats/internal/policy"
	"peats/internal/tuple"
)

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("r0=127.0.0.1:7000, r1=127.0.0.1:7001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["r0"] != "127.0.0.1:7000" || got["r1"] != "127.0.0.1:7001" {
		t.Errorf("got %v", got)
	}
	if _, err := parsePeers("r0:missing-equals"); err == nil {
		t.Error("bad peer accepted")
	}
}

func TestBuildPolicy(t *testing.T) {
	for _, name := range []string{"allow-all", "weak", "lockfree", "strong:4,1"} {
		if _, err := buildPolicy(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for _, name := range []string{"nope", "strong:x", "strong:"} {
		if _, err := buildPolicy(name); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// The weak policy actually denies non-cas ops.
	pol, err := buildPolicy("weak")
	if err != nil {
		t.Fatal(err)
	}
	inv := policy.Invocation{Invoker: "p", Op: policy.OpOut, Entry: tuple.T(tuple.Int(1))}
	if pol.Allows(inv, probeState{}) {
		t.Error("weak policy allows out")
	}
}

// probeState is an empty StateView for policy probing.
type probeState struct{}

func (probeState) Rdp(tuple.Tuple) (tuple.Tuple, bool) { return tuple.Tuple{}, false }
func (probeState) CountMatching(tuple.Tuple) int       { return 0 }
func (probeState) ForEach(fn func(tuple.Tuple) bool)   {}
