package main

import (
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"peats/internal/policy"
	"peats/internal/tuple"
)

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("r0=127.0.0.1:7000, r1=127.0.0.1:7001")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["r0"] != "127.0.0.1:7000" || got["r1"] != "127.0.0.1:7001" {
		t.Errorf("got %v", got)
	}
	if _, err := parsePeers("r0:missing-equals"); err == nil {
		t.Error("bad peer accepted")
	}
}

func TestBuildPolicy(t *testing.T) {
	for _, name := range []string{"allow-all", "weak", "lockfree", "strong:4,1"} {
		if _, err := buildPolicy(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for _, name := range []string{"nope", "strong:x", "strong:"} {
		if _, err := buildPolicy(name); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// The weak policy actually denies non-cas ops.
	pol, err := buildPolicy("weak")
	if err != nil {
		t.Fatal(err)
	}
	inv := policy.Invocation{Invoker: "p", Op: policy.OpOut, Entry: tuple.T(tuple.Int(1))}
	if pol.Allows(inv, probeState{}) {
		t.Error("weak policy allows out")
	}
}

// TestShutdownDrainsMetricsEndpoint starts a single-replica server
// (f=0) with a live metrics endpoint, scrapes it, then delivers one
// injected signal and asserts that run returns cleanly and that the
// HTTP listener is actually closed afterwards.
func TestShutdownDrainsMetricsEndpoint(t *testing.T) {
	sig := make(chan os.Signal, 1)
	readyCh := make(chan [2]string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(serverConfig{
			id:          "r0",
			listen:      "127.0.0.1:0",
			peers:       "r0=127.0.0.1:0",
			master:      "test-master",
			polName:     "allow-all",
			f:           0,
			shards:      2,
			batch:       8,
			metricsAddr: "127.0.0.1:0",
			signals:     sig,
			ready:       func(ra, ma string) { readyCh <- [2]string{ra, ma} },
		})
	}()

	var metricsAddr string
	select {
	case addrs := <-readyCh:
		metricsAddr = addrs[1]
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	get := func(path string) (string, error) {
		resp, err := http.Get("http://" + metricsAddr + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}
	body, err := get("/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	for _, want := range []string{"peats_build_info", "peats_bft_view", "peats_space_tuples"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	body, err = get("/status")
	if err != nil {
		t.Fatalf("scrape /status: %v", err)
	}
	if !strings.Contains(body, `"replica": "r0"`) {
		t.Errorf("/status missing replica id:\n%s", body)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error on shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after signal")
	}
	close(sig) // unblocks the force-exit goroutine harmlessly

	if _, err := get("/metrics"); err == nil {
		t.Error("metrics endpoint still serving after shutdown")
	}
}

// probeState is an empty StateView for policy probing.
type probeState struct{}

func (probeState) Rdp(tuple.Tuple) (tuple.Tuple, bool) { return tuple.Tuple{}, false }
func (probeState) CountMatching(tuple.Tuple) int       { return 0 }
func (probeState) ForEach(fn func(tuple.Tuple) bool)   {}
