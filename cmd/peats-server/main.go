// peats-server runs one replica of a TCP-deployed replicated PEATS
// (paper Fig. 2). Four replicas with f=1 on one machine:
//
//	peats-server -id r0 -listen 127.0.0.1:7000 -peers r0=127.0.0.1:7000,r1=127.0.0.1:7001,r2=127.0.0.1:7002,r3=127.0.0.1:7003 -master secret
//	peats-server -id r1 -listen 127.0.0.1:7001 -peers ... (same)
//	... r2, r3 likewise.
//
// All replicas (and clients, see peats-client) must share the same
// -master secret, from which pairwise HMAC keys are derived. The
// served space uses the allow-all policy unless -policy selects one of
// the built-in consensus policies.
//
// In a partitioned deployment (M independent groups sharding the tuple
// key space) every replica additionally names its group and the shared
// topology file:
//
//	peats-server -id r0 -listen 127.0.0.1:7000 -group g0 -topology topo.json -master secret
//
// The topology file lists every group with its replicas and addresses;
// -peers and -f are then derived from the replica's own group (passing
// them anyway is allowed, but they must agree with the topology). The
// group identity is stamped into agreement so misrouted requests are
// dropped, and the replica signs 2PC outcomes with its attestation key
// (derived from -master) so clients can assemble transferable vote
// certificates for cross-partition commits.
package main

import (
	"context"
	"crypto/ed25519"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"log"

	"peats/internal/auth"
	"peats/internal/bft"
	"peats/internal/buildinfo"
	"peats/internal/consensus"
	"peats/internal/durable"
	"peats/internal/metrics"
	"peats/internal/partition"
	"peats/internal/policy"
	"peats/internal/space"
	"peats/internal/transport"
	"peats/internal/universal"
)

func main() {
	var (
		id         = flag.String("id", "", "replica identity (must appear in -peers)")
		listen     = flag.String("listen", "", "listen address, e.g. 127.0.0.1:7000")
		peers      = flag.String("peers", "", "comma-separated id=addr pairs for ALL replicas")
		fFlag      = flag.Int("f", 1, "tolerated Byzantine replicas (n = 3f+1)")
		master     = flag.String("master", "", "shared master secret for pairwise keys")
		group      = flag.String("group", "", "partitioned deployment: this replica's group id (needs -topology)")
		topoPath   = flag.String("topology", "", "partitioned deployment: JSON topology file shared by all groups")
		polName    = flag.String("policy", "allow-all", "access policy: allow-all|weak|strong:<n>,<t>|lockfree")
		clients    = flag.String("clients", "", "comma-separated client identities to provision keys for")
		engine     = flag.String("store", "", "tuple-store engine: slice|indexed|durable (default indexed; durable needs -data-dir)")
		dataDir    = flag.String("data-dir", "", "durable engine data directory (selects -store durable): WAL + snapshots, recovered on restart")
		fsync      = flag.String("fsync", "interval", "durable engine fsync policy: always (per batch) | interval (group commit) | never")
		shards     = flag.Int("shards", 1, "space shards: per-shard locking lets reads and writes on different shards run concurrently (1-64)")
		batch      = flag.Int("batch", 64, "max client requests ordered per agreement round (1 = unbatched)")
		batchDelay = flag.Duration("batch-delay", 2*time.Millisecond, "max time the primary holds a non-full batch while the pipeline is busy")
		tentative  = flag.Bool("tentative", true, "execute batches at prepared and reply tentatively, one round before the commit quorum")
		sqProto    = flag.Int("sendq-protocol", 0, "per-peer protocol send-queue depth in frames; oldest dropped when full (default 4096)")
		sqRequest  = flag.Int("sendq-request", 0, "per-peer request send-queue depth in frames; newest rejected when full (default 1024)")
		sqBulk     = flag.Int("sendq-bulk", 0, "per-peer bulk send-queue depth in chunks; whole messages admitted or rejected (default 256)")
		bulkChunk  = flag.Int("bulk-chunk", 0, "bulk frames larger than this are chunked onto the dedicated bulk connection (default 64KiB)")
		metricsAt  = flag.String("metrics-addr", "", "serve Prometheus /metrics and JSON /status on this address (off when empty)")
		version    = flag.Bool("version", false, "print build version and exit")
		verbose    = flag.Bool("v", false, "log protocol events")
	)
	flag.Parse()
	if *version {
		buildinfo.Print("peats-server")
		return
	}
	if err := run(serverConfig{
		id: *id, listen: *listen, peers: *peers, clients: *clients,
		master: *master, polName: *polName, engine: *engine,
		group: *group, topology: *topoPath,
		dataDir: *dataDir, fsync: *fsync, metricsAddr: *metricsAt,
		f: *fFlag, shards: *shards, batch: *batch, batchDelay: *batchDelay,
		tentative: *tentative,
		sendq: transport.TCPConfig{
			ProtocolDepth: *sqProto, RequestDepth: *sqRequest,
			BulkDepth: *sqBulk, BulkChunk: *bulkChunk,
		},
		verbose: *verbose,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "peats-server:", err)
		os.Exit(1)
	}
}

type serverConfig struct {
	id, listen, peers, clients, master, polName, engine string
	group, topology                                     string
	dataDir, fsync                                      string
	metricsAddr                                         string
	f, shards, batch                                    int
	batchDelay                                          time.Duration
	tentative                                           bool
	sendq                                               transport.TCPConfig
	verbose                                             bool

	// Test hooks. signals, when non-nil, replaces the OS signal
	// subscription (closing it is a no-op, not a signal); ready, when
	// non-nil, is called once the replica serves, with the bound
	// replica and metrics addresses.
	signals <-chan os.Signal
	ready   func(replicaAddr, metricsAddr string)
}

// serverStatus is the /status document: the replica's protocol
// position (read from its lock-free mirrors) plus the deployment shape.
type serverStatus struct {
	Replica  string         `json:"replica"`
	Group    string         `json:"group,omitempty"`
	View     uint64         `json:"view"`
	Executed uint64         `json:"executed"`
	LowWater uint64         `json:"low_water"`
	Batches  uint64         `json:"batches_proposed"`
	Records  int64          `json:"log_records"`
	Policy   string         `json:"policy"`
	Engine   string         `json:"engine"`
	Shards   int            `json:"shards"`
	Peers    []string       `json:"peers"`
	F        int            `json:"f"`
	Build    buildinfo.Info `json:"build"`
}

func run(cfg serverConfig) error {
	if cfg.id == "" || cfg.listen == "" || cfg.master == "" {
		return fmt.Errorf("-id, -listen and -master are required")
	}
	var topo *partition.Topology
	if cfg.topology != "" {
		if cfg.group == "" {
			return fmt.Errorf("-topology needs -group")
		}
		var err error
		topo, err = partition.LoadTopology(cfg.topology)
		if err != nil {
			return err
		}
		gspec, ok := topo.Group(cfg.group)
		if !ok {
			return fmt.Errorf("group %q is not in topology %s", cfg.group, cfg.topology)
		}
		// The topology is the authority on the group's fault bound and
		// membership; -peers may still override addresses (NAT, tests).
		cfg.f = gspec.F
		if cfg.peers == "" {
			pairs := make([]string, len(gspec.Replicas))
			for i, r := range gspec.Replicas {
				if r.Addr == "" {
					return fmt.Errorf("topology has no address for replica %q of group %q (add addr fields or pass -peers)",
						r.ID, cfg.group)
				}
				pairs[i] = r.ID + "=" + r.Addr
			}
			cfg.peers = strings.Join(pairs, ",")
		}
	} else if cfg.group != "" {
		return fmt.Errorf("-group needs -topology")
	}
	if cfg.peers == "" {
		return fmt.Errorf("-peers (or a -topology carrying addresses) is required")
	}
	addrs, err := parsePeers(cfg.peers)
	if err != nil {
		return err
	}
	replicaIDs := make([]string, 0, len(addrs))
	for rid := range addrs {
		replicaIDs = append(replicaIDs, rid)
	}
	sort.Strings(replicaIDs)
	if len(replicaIDs) != 3*cfg.f+1 {
		return fmt.Errorf("got %d replicas for f=%d, need %d", len(replicaIDs), cfg.f, 3*cfg.f+1)
	}
	if topo != nil {
		gspec, _ := topo.Group(cfg.group)
		for _, r := range gspec.Replicas {
			if _, ok := addrs[r.ID]; !ok {
				return fmt.Errorf("-peers disagrees with topology: group %q expects replica %q", cfg.group, r.ID)
			}
		}
		if _, ok := addrs[cfg.id]; !ok {
			return fmt.Errorf("replica %q is not a member of group %q", cfg.id, cfg.group)
		}
	}

	pol, err := buildPolicy(cfg.polName)
	if err != nil {
		return err
	}

	// Provision pairwise keys for replicas and known clients. The same
	// keyring authenticates transport frames and verifies the request
	// authenticator vectors clients attach for the batching fast path.
	all := append([]string{}, replicaIDs...)
	if cfg.clients != "" {
		all = append(all, strings.Split(cfg.clients, ",")...)
	}
	kr := auth.NewKeyringFromMaster([]byte(cfg.master), cfg.id, all)

	tr, err := transport.NewTCPWithConfig(cfg.id, cfg.listen, addrs, kr, cfg.sendq)
	if err != nil {
		return err
	}
	defer tr.Close()

	var (
		svc *bft.SpaceService
		db  *durable.DB
	)
	if cfg.dataDir != "" || cfg.engine == string(space.EngineDurable) {
		if cfg.dataDir == "" {
			return fmt.Errorf("-store durable needs -data-dir")
		}
		db, err = durable.Open(durable.Options{
			Dir:  cfg.dataDir,
			Sync: durable.SyncPolicy(cfg.fsync),
			// The replica compacts at full checkpoints itself.
			AutoCompactBytes: -1,
		})
		if err != nil {
			return err
		}
		defer db.Close()
		svc, err = bft.NewDurableSpaceService(pol, db, cfg.shards)
		if err != nil {
			return err
		}
		fmt.Printf("recovered %d tuples up to agreement seq %d from %s\n",
			len(db.Recovered().Tuples), db.Recovered().UnitSeq, cfg.dataDir)
	} else {
		svc, err = bft.NewSpaceServiceWithConfig(pol, space.Engine(cfg.engine), cfg.shards)
		if err != nil {
			return err
		}
	}

	// In a partitioned deployment the replica enforces its group
	// boundary (2PC prepares for other groups are rejected) and signs
	// agreed 2PC outcomes so clients can carry them across groups.
	var attestKey ed25519.PrivateKey
	if topo != nil {
		svc.EnablePartition(cfg.group, topo.Directory([]byte(cfg.master)))
		attestKey = bft.AttestKeyFor([]byte(cfg.master), cfg.group, cfg.id)
	}

	var logger *log.Logger
	if cfg.verbose {
		logger = log.New(os.Stderr, "", log.Lmicroseconds)
	}

	// The metrics registry exists only when an endpoint will serve it:
	// a nil registry makes every instrumented site a no-op branch.
	var reg *metrics.Registry
	if cfg.metricsAddr != "" {
		reg = metrics.New()
		bi := buildinfo.Read()
		reg.GaugeFunc("peats_build_info",
			"Build identity; always 1, the labels carry the version.",
			func() float64 { return 1 },
			metrics.L("version", bi.Version), metrics.L("revision", bi.Revision),
			metrics.L("go", bi.Go), metrics.L("replica", cfg.id))
	}

	rep, err := bft.NewReplica(bft.ReplicaConfig{
		ID:               cfg.id,
		Replicas:         replicaIDs,
		F:                cfg.f,
		Transport:        tr,
		Service:          svc,
		BatchSize:        cfg.batch,
		BatchDelay:       cfg.batchDelay,
		DisableTentative: !cfg.tentative,
		Keyring:          kr,
		Logger:           logger,
		Group:            cfg.group,
		AttestKey:        attestKey,
		Metrics:          reg,
	})
	if err != nil {
		return err
	}
	if reg != nil {
		tr.EnableMetrics(reg, metrics.L("replica", cfg.id))
	}
	rep.Start()
	fmt.Printf("replica %s serving on %s (group %v, f=%d, policy %s, batch %d, shards %d, store %s)\n",
		cfg.id, tr.Addr(), replicaIDs, cfg.f, cfg.polName, cfg.batch, svc.Space().Shards(), svc.Space().Engine())
	if topo != nil {
		fmt.Printf("partition %s of %d-group topology %s\n", cfg.group, len(topo.Groups), cfg.topology)
	}

	// Observability endpoint: Prometheus text on /metrics (JSON with
	// ?format=json) and the status document on /status. Serving only
	// reads atomic mirrors and registry state, never the event loop's.
	var (
		httpSrv     *http.Server
		httpErr     = make(chan error, 1)
		metricsAddr string
	)
	if cfg.metricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		metricsAddr = ln.Addr().String()
		status := func() any {
			return serverStatus{
				Replica:  cfg.id,
				Group:    cfg.group,
				View:     rep.View(),
				Executed: rep.Executed(),
				LowWater: rep.LowWater(),
				Batches:  rep.BatchesProposed(),
				Records:  rep.LogRecords(),
				Policy:   cfg.polName,
				Engine:   string(svc.Space().Engine()),
				Shards:   svc.Space().Shards(),
				Peers:    replicaIDs,
				F:        cfg.f,
				Build:    buildinfo.Read(),
			}
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(reg))
		mux.Handle("/status", metrics.StatusHandler(status))
		httpSrv = &http.Server{Handler: mux}
		go func() { httpErr <- httpSrv.Serve(ln) }()
		fmt.Printf("metrics on http://%s/metrics, status on http://%s/status\n", metricsAddr, metricsAddr)
	}
	if cfg.ready != nil {
		cfg.ready(tr.Addr(), metricsAddr)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM drains and closes the
	// metrics endpoint, stops ordering and execution, closes the
	// transport, and flushes and closes the WAL (the deferred db.Close
	// reports any final I/O error); a second signal aborts immediately.
	sig := cfg.signals
	if sig == nil {
		ch := make(chan os.Signal, 2)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		sig = ch
	}
	<-sig
	fmt.Println("shutting down: draining replica and flushing the log")
	go func() {
		if _, ok := <-sig; !ok {
			return // channel closed by a test harness, not a signal
		}
		fmt.Fprintln(os.Stderr, "peats-server: forced exit")
		os.Exit(2)
	}()
	if httpSrv != nil {
		// Drain in-flight scrapes, then stop accepting; a scrape that
		// outlives the grace period is cut off with the listener.
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			_ = httpSrv.Close()
		}
		cancel()
		if err := <-httpErr; err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "peats-server: metrics endpoint:", err)
		}
	}
	rep.Stop()
	tr.Close()
	if db != nil {
		if err := db.Close(); err != nil {
			return fmt.Errorf("flush WAL: %w", err)
		}
	}
	fmt.Println("shutdown complete")
	return nil
}

func parsePeers(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=addr)", pair)
		}
		out[id] = addr
	}
	return out, nil
}

// buildPolicy maps a policy name to one of the paper's access policies.
func buildPolicy(name string) (policy.Policy, error) {
	switch {
	case name == "allow-all":
		return policy.AllowAll(), nil
	case name == "weak":
		return consensus.WeakPolicy(), nil
	case name == "lockfree":
		return universal.LockFreePolicy(), nil
	case strings.HasPrefix(name, "strong:"):
		var n, t int
		if _, err := fmt.Sscanf(name, "strong:%d,%d", &n, &t); err != nil {
			return policy.Policy{}, fmt.Errorf("bad strong policy %q (want strong:<n>,<t>)", name)
		}
		procs := make([]policy.ProcessID, n)
		for i := range procs {
			procs[i] = policy.ProcessID(fmt.Sprintf("p%d", i))
		}
		return consensus.StrongPolicy(procs, t, []int64{0, 1}), nil
	default:
		return policy.Policy{}, fmt.Errorf("unknown policy %q", name)
	}
}
