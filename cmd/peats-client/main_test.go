package main

import "testing"

func TestParseTuple(t *testing.T) {
	tu, err := parseTuple("'TASK' 42 * ?who")
	if err != nil {
		t.Fatal(err)
	}
	if tu.Arity() != 4 {
		t.Fatalf("arity %d", tu.Arity())
	}
	if s, _ := tu.Field(0).StrValue(); s != "TASK" {
		t.Errorf("field 0 = %v", tu.Field(0))
	}
	if v, _ := tu.Field(1).IntValue(); v != 42 {
		t.Errorf("field 1 = %v", tu.Field(1))
	}
	if !tu.Field(2).IsWildcard() || !tu.Field(3).IsFormal() {
		t.Error("wildcard/formal parsing broken")
	}
	if tu.Field(3).Name() != "who" {
		t.Errorf("formal name = %q", tu.Field(3).Name())
	}

	if _, err := parseTuple(""); err == nil {
		t.Error("empty tuple accepted")
	}
	if _, err := parseTuple("notanumber"); err == nil {
		t.Error("bare word accepted")
	}
	if _, err := parseTuple("-17"); err != nil {
		t.Errorf("negative int rejected: %v", err)
	}
}
