// peats-client is an interactive shell for a TCP-deployed replicated
// PEATS served by peats-server instances.
//
//	peats-client -id alice -peers r0=127.0.0.1:7000,... -master secret
//
// Commands (tuple fields: bare integers, 'quoted strings', * wildcard,
// ?name formal):
//
//	out  <field> ...          insert an entry
//	rdp  <field> ...          non-blocking read
//	inp  <field> ...          non-blocking destructive read
//	cas  <tmpl fields> -> <entry fields>   conditional atomic swap
//	quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"peats/internal/auth"
	"peats/internal/bft"
	"peats/internal/transport"
	"peats/internal/tuple"
)

func main() {
	var (
		id     = flag.String("id", "client", "client identity (provisioned on the servers)")
		peers  = flag.String("peers", "", "comma-separated id=addr pairs for all replicas")
		fFlag  = flag.Int("f", 1, "tolerated Byzantine replicas")
		master = flag.String("master", "", "shared master secret")
	)
	flag.Parse()
	if err := run(*id, *peers, *master, *fFlag); err != nil {
		fmt.Fprintln(os.Stderr, "peats-client:", err)
		os.Exit(1)
	}
}

func run(id, peers, master string, f int) error {
	if peers == "" || master == "" {
		return fmt.Errorf("-peers and -master are required")
	}
	addrs := make(map[string]string)
	for _, pair := range strings.Split(peers, ",") {
		rid, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return fmt.Errorf("bad peer %q", pair)
		}
		addrs[rid] = addr
	}
	replicaIDs := make([]string, 0, len(addrs))
	for rid := range addrs {
		replicaIDs = append(replicaIDs, rid)
	}
	sort.Strings(replicaIDs)

	kr := auth.NewKeyringFromMaster([]byte(master), id, replicaIDs)
	tr, err := transport.NewTCP(id, "127.0.0.1:0", addrs, kr)
	if err != nil {
		return err
	}
	defer tr.Close()
	cli := bft.NewClient(tr, replicaIDs, f)
	cli.Keyring = kr // enables the authenticator vector + primary-first sends
	ts := bft.NewRemoteSpace(cli)

	fmt.Printf("connected as %s to %v; type 'help'\n", id, replicaIDs)
	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("peats> "); sc.Scan(); fmt.Print("peats> ") {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if line == "help" {
			fmt.Println("commands: out|rdp|inp <fields...>, cas <tmpl...> -> <entry...>, quit")
			fmt.Println("fields: 42, 'text', *, ?x")
			continue
		}
		if err := execute(ts, line); err != nil {
			fmt.Println("error:", err)
		}
	}
	return sc.Err()
}

func execute(ts *bft.RemoteSpace, line string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case "out":
		entry, err := parseTuple(rest)
		if err != nil {
			return err
		}
		if err := ts.Out(ctx, entry); err != nil {
			return err
		}
		fmt.Println("ok")
	case "rdp", "inp":
		tmpl, err := parseTuple(rest)
		if err != nil {
			return err
		}
		op := ts.Rdp
		if cmd == "inp" {
			op = ts.Inp
		}
		t, ok, err := op(ctx, tmpl)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("no match")
			return nil
		}
		fmt.Println(t)
	case "cas":
		tmplStr, entryStr, ok := strings.Cut(rest, "->")
		if !ok {
			return fmt.Errorf("cas wants '<tmpl> -> <entry>'")
		}
		tmpl, err := parseTuple(tmplStr)
		if err != nil {
			return err
		}
		entry, err := parseTuple(entryStr)
		if err != nil {
			return err
		}
		ins, matched, err := ts.Cas(ctx, tmpl, entry)
		if err != nil {
			return err
		}
		if ins {
			fmt.Println("inserted")
		} else {
			fmt.Println("exists:", matched)
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// parseTuple reads whitespace-separated fields: integers, 'strings',
// the * wildcard, and ?name formals.
func parseTuple(s string) (tuple.Tuple, error) {
	var fields []tuple.Field
	for _, tok := range strings.Fields(s) {
		switch {
		case tok == "*":
			fields = append(fields, tuple.Any())
		case strings.HasPrefix(tok, "?"):
			fields = append(fields, tuple.Formal(tok[1:]))
		case strings.HasPrefix(tok, "'"):
			fields = append(fields, tuple.Str(strings.Trim(tok, "'")))
		default:
			v, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return tuple.Tuple{}, fmt.Errorf("bad field %q (integers, 'strings', *, ?name)", tok)
			}
			fields = append(fields, tuple.Int(v))
		}
	}
	if len(fields) == 0 {
		return tuple.Tuple{}, fmt.Errorf("empty tuple")
	}
	return tuple.T(fields...), nil
}
