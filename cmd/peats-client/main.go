// peats-client is an interactive shell for a TCP-deployed replicated
// PEATS served by peats-server instances.
//
//	peats-client -id alice -peers r0=127.0.0.1:7000,... -master secret
//
// Against a partitioned deployment, point it at the shared topology
// file instead of a single replica group; the shell then routes each
// operation to the owning group (FNV-1a over arity and first field)
// and runs cross-partition submissions through the client-coordinated
// two-phase commit:
//
//	peats-client -id alice -topology topo.json -master secret
//
// Commands (tuple fields: bare integers, 'quoted strings', * wildcard,
// ?name formal):
//
//	out  <field> ...          insert an entry
//	rdp  <field> ...          non-blocking read
//	inp  <field> ...          non-blocking destructive read
//	cas  <tmpl fields> -> <entry fields>   conditional atomic swap
//	quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"peats/internal/auth"
	"peats/internal/bft"
	"peats/internal/buildinfo"
	"peats/internal/partition"
	"peats/internal/transport"
	"peats/internal/tuple"
)

func main() {
	var (
		id       = flag.String("id", "client", "client identity (provisioned on the servers)")
		peers    = flag.String("peers", "", "comma-separated id=addr pairs for all replicas of one group")
		fFlag    = flag.Int("f", 1, "tolerated Byzantine replicas")
		master   = flag.String("master", "", "shared master secret")
		topoPath = flag.String("topology", "", "partitioned deployment: JSON topology file (replaces -peers/-f)")
		version  = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print("peats-client")
		return
	}
	if err := run(*id, *peers, *master, *topoPath, *fFlag); err != nil {
		fmt.Fprintln(os.Stderr, "peats-client:", err)
		os.Exit(1)
	}
}

// shellSpace is the slice of peats.TupleSpace the shell drives; both
// the single-group bft.RemoteSpace and the partition router satisfy it.
type shellSpace interface {
	Out(ctx context.Context, entry tuple.Tuple) error
	Rdp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error)
	Inp(ctx context.Context, tmpl tuple.Tuple) (tuple.Tuple, bool, error)
	Cas(ctx context.Context, tmpl, entry tuple.Tuple) (bool, tuple.Tuple, error)
}

func run(id, peers, master, topoPath string, f int) error {
	if master == "" {
		return fmt.Errorf("-master is required")
	}
	var (
		ts      shellSpace
		where   string
		closers []func()
	)
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	if topoPath != "" {
		topo, err := partition.LoadTopology(topoPath)
		if err != nil {
			return err
		}
		ps, close, err := dialTopology(id, master, topo)
		if err != nil {
			return err
		}
		closers = append(closers, close)
		ts = ps
		where = fmt.Sprintf("%d-group topology %v", len(topo.Groups), topo.GroupIDs())
	} else {
		if peers == "" {
			return fmt.Errorf("-peers or -topology is required")
		}
		addrs := make(map[string]string)
		for _, pair := range strings.Split(peers, ",") {
			rid, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return fmt.Errorf("bad peer %q", pair)
			}
			addrs[rid] = addr
		}
		replicaIDs := make([]string, 0, len(addrs))
		for rid := range addrs {
			replicaIDs = append(replicaIDs, rid)
		}
		sort.Strings(replicaIDs)

		kr := auth.NewKeyringFromMaster([]byte(master), id, replicaIDs)
		tr, err := transport.NewTCP(id, "127.0.0.1:0", addrs, kr)
		if err != nil {
			return err
		}
		closers = append(closers, func() { tr.Close() })
		cli := bft.NewClient(tr, replicaIDs, f)
		cli.Keyring = kr // enables the authenticator vector + primary-first sends
		ts = bft.NewRemoteSpace(cli)
		where = fmt.Sprintf("%v", replicaIDs)
	}

	fmt.Printf("connected as %s to %s; type 'help'\n", id, where)
	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("peats> "); sc.Scan(); fmt.Print("peats> ") {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if line == "help" {
			fmt.Println("commands: out|rdp|inp <fields...>, cas <tmpl...> -> <entry...>, quit")
			fmt.Println("fields: 42, 'text', *, ?x")
			continue
		}
		if err := execute(ts, line); err != nil {
			fmt.Println("error:", err)
		}
	}
	return sc.Err()
}

// dialTopology opens one TCP transport and BFT client per group of the
// topology (every replica address must be listed) and wires them into
// the partition router. All group clients authenticate as the same
// process identity, so every group's reference monitor sees one
// principal.
func dialTopology(id, master string, topo *partition.Topology) (*partition.Space, func(), error) {
	dir := topo.Directory([]byte(master))
	var (
		groups  []partition.Group
		closers []func()
	)
	close := func() {
		for _, c := range closers {
			c()
		}
	}
	for _, g := range topo.Groups {
		addrs := make(map[string]string, len(g.Replicas))
		replicaIDs := make([]string, 0, len(g.Replicas))
		for _, r := range g.Replicas {
			if r.Addr == "" {
				close()
				return nil, nil, fmt.Errorf("topology has no address for replica %q of group %q", r.ID, g.ID)
			}
			addrs[r.ID] = r.Addr
			replicaIDs = append(replicaIDs, r.ID)
		}
		sort.Strings(replicaIDs)
		kr := auth.NewKeyringFromMaster([]byte(master), id, replicaIDs)
		tr, err := transport.NewTCP(id, "127.0.0.1:0", addrs, kr)
		if err != nil {
			close()
			return nil, nil, fmt.Errorf("group %q: %w", g.ID, err)
		}
		closers = append(closers, func() { tr.Close() })
		cli := bft.NewClient(tr, replicaIDs, g.F)
		cli.Keyring = kr
		cli.Group = g.ID
		cli.AttestKeys = dir[g.ID].Keys
		groups = append(groups, partition.Group{ID: g.ID, Client: cli})
	}
	ps, err := partition.NewSpace(groups)
	if err != nil {
		close()
		return nil, nil, err
	}
	return ps, close, nil
}

func execute(ts shellSpace, line string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case "out":
		entry, err := parseTuple(rest)
		if err != nil {
			return err
		}
		if err := ts.Out(ctx, entry); err != nil {
			return err
		}
		fmt.Println("ok")
	case "rdp", "inp":
		tmpl, err := parseTuple(rest)
		if err != nil {
			return err
		}
		op := ts.Rdp
		if cmd == "inp" {
			op = ts.Inp
		}
		t, ok, err := op(ctx, tmpl)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("no match")
			return nil
		}
		fmt.Println(t)
	case "cas":
		tmplStr, entryStr, ok := strings.Cut(rest, "->")
		if !ok {
			return fmt.Errorf("cas wants '<tmpl> -> <entry>'")
		}
		tmpl, err := parseTuple(tmplStr)
		if err != nil {
			return err
		}
		entry, err := parseTuple(entryStr)
		if err != nil {
			return err
		}
		ins, matched, err := ts.Cas(ctx, tmpl, entry)
		if err != nil {
			return err
		}
		if ins {
			fmt.Println("inserted")
		} else {
			fmt.Println("exists:", matched)
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

// parseTuple reads whitespace-separated fields: integers, 'strings',
// the * wildcard, and ?name formals.
func parseTuple(s string) (tuple.Tuple, error) {
	var fields []tuple.Field
	for _, tok := range strings.Fields(s) {
		switch {
		case tok == "*":
			fields = append(fields, tuple.Any())
		case strings.HasPrefix(tok, "?"):
			fields = append(fields, tuple.Formal(tok[1:]))
		case strings.HasPrefix(tok, "'"):
			fields = append(fields, tuple.Str(strings.Trim(tok, "'")))
		default:
			v, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return tuple.Tuple{}, fmt.Errorf("bad field %q (integers, 'strings', *, ?name)", tok)
			}
			fields = append(fields, tuple.Int(v))
		}
	}
	if len(fields) == 0 {
		return tuple.Tuple{}, fmt.Errorf("empty tuple")
	}
	return tuple.T(fields...), nil
}
