// peats-sim is the fault-schedule explorer: it sweeps seeded
// adversarial schedules (message loss, reordering, bounded delay,
// partitions with heals, crash-restarts over the durable store,
// Byzantine message mutation) through the deterministic cluster
// simulator and checks the standing invariants — agreement safety,
// client at-most-once, convergence, 2PC outcome justification — after
// every run. Failures print the seed and a greedily minimized schedule
// for exact replay:
//
//	peats-sim -seeds 5000                      # sweep every family
//	peats-sim -schedule mixed -seeds 20000     # hammer one family
//	peats-sim -schedule mixed -replay 1234     # re-run one failing seed
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"peats/internal/buildinfo"
	"peats/internal/sim"
)

type failureReport struct {
	Family    string `json:"family"`
	Seed      int64  `json:"seed"`
	Error     string `json:"error"`
	Schedule  string `json:"schedule"`
	Minimized string `json:"minimized"`
}

func main() {
	var (
		schedule = flag.String("schedule", "all", "schedule family to sweep: all|"+strings.Join(sim.CannedNames(), "|"))
		seeds    = flag.Int("seeds", 1000, "seeds per family")
		start    = flag.Int64("start", 1, "first seed of the sweep")
		workers  = flag.Int("workers", runtime.NumCPU(), "concurrent runs")
		replay   = flag.Int64("replay", -1, "replay exactly this seed of -schedule and exit (-1 = sweep)")
		noMin    = flag.Bool("no-minimize", false, "skip schedule minimization on failures")
		jsonOut  = flag.String("json", "", "write failing seeds to this JSON file (CI artifact)")
		version  = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print("peats-sim")
		return
	}

	families := sim.CannedNames()
	if *schedule != "all" {
		families = []string{*schedule}
	}

	if *replay >= 0 {
		if *schedule == "all" {
			fmt.Fprintln(os.Stderr, "peats-sim: -replay needs a single -schedule family")
			os.Exit(2)
		}
		os.Exit(replayOne(*schedule, *replay, !*noMin))
	}

	var reports []failureReport
	for _, name := range families {
		t0 := time.Now()
		fails, events := sim.Sweep(name, *start, *seeds, *workers)
		fmt.Printf("%-12s %6d seeds  %9d events  %3d failures  %s\n",
			name, *seeds, events, len(fails), time.Since(t0).Round(time.Millisecond))
		for _, f := range fails {
			rep := failureReport{
				Family:   name,
				Seed:     f.Schedule.Seed,
				Error:    f.Err.Error(),
				Schedule: f.Schedule.String(),
			}
			fmt.Printf("  FAIL seed %d: %v\n       schedule:  %s\n", f.Schedule.Seed, f.Err, f.Schedule)
			if !*noMin {
				min := sim.Minimize(f.Schedule)
				rep.Minimized = min.String()
				fmt.Printf("       minimized: %s\n", min)
			}
			fmt.Printf("       replay: peats-sim -schedule %s -replay %d\n", name, f.Schedule.Seed)
			reports = append(reports, rep)
		}
	}
	if *jsonOut != "" && len(reports) > 0 {
		if err := writeJSON(*jsonOut, reports); err != nil {
			fmt.Fprintln(os.Stderr, "peats-sim:", err)
		}
	}
	if len(reports) > 0 {
		os.Exit(1)
	}
}

func replayOne(name string, seed int64, minimize bool) int {
	res, err := sim.RunSeed(name, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "peats-sim:", err)
		return 2
	}
	fmt.Printf("schedule: %s\n", res.Schedule)
	fmt.Printf("events %d  executed %d  trace %x  state %x\n",
		res.Events, res.Executed, res.Trace[:8], res.StateDigest[:8])
	if !res.Failed() {
		fmt.Println("PASS")
		return 0
	}
	fmt.Printf("FAIL: %v\n", res.Err)
	if minimize {
		fmt.Printf("minimized: %s\n", sim.Minimize(res.Schedule))
	}
	return 1
}

func writeJSON(path string, reports []failureReport) error {
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
