// peats-bench regenerates the paper's evaluation tables on the running
// implementation (see DESIGN.md §4 for the experiment index):
//
//	peats-bench -table bits        E1: memory comparison (§5.2, fn. 3-4)
//	peats-bench -table ops         E8: operation counts vs ACL baseline (§7)
//	peats-bench -table resilience  E2: n ≥ 3t+1 bound (Thm. 2 / Cor. 1)
//	peats-bench -table kvalued     E3: n ≥ (k+1)t+1 bound (Thms. 3-4)
//	peats-bench -table ablation    design-choice costs (DESIGN.md §4)
//	peats-bench -table stores      storage-engine comparison (slice vs indexed)
//	peats-bench -table agreement   agreement layer: batched vs unbatched, read-only vs ordered
//	peats-bench -table shards      sharded space: fast-path reads under write contention per shard count
//	peats-bench -table tx          atomic k-op transactions vs k sequential round trips
//	peats-bench -table durable     WAL group-commit vs fsync-per-op, recovery time vs WAL length
//	peats-bench -table latency     commit round cut: committed vs tentative vs pipelined Submit
//	peats-bench -table transport   TCP wire layer: write coalescing throughput, vote p99 under bulk
//	peats-bench -table partitions  partitioned deployment: write scaling per group count, 2PC cost
//	peats-bench -table all         everything
//
// The agreement table additionally writes a machine-readable report to
// -json (default BENCH_agreement.json); size it with -agree-writers,
// -agree-ops, -agree-reads and -agree-batch. The shards table writes
// -shards-json (default BENCH_shards.json); size it with -shard-counts,
// -shard-writers, -shard-readers, -shard-reads, -shard-resident and
// -shard-duration. The tx table writes -tx-json (default
// BENCH_tx.json); size it with -tx-k, -tx-rounds and -tx-groups.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"peats/internal/bench"
	"peats/internal/buildinfo"
)

// knownTables lists every -table value, in print order for "all".
var knownTables = []string{
	"bits", "ops", "resilience", "kvalued", "ablation", "stores",
	"agreement", "shards", "tx", "durable", "latency", "transport",
	"partitions", "all",
}

func main() {
	var (
		table      = flag.String("table", "all", "table to print: "+strings.Join(knownTables, "|"))
		seed       = flag.Int64("seed", 1, "workload seed for randomized table state (logged every run so results reproduce exactly)")
		tsFlag     = flag.String("t", "1,2,3,4", "comma-separated fault bounds t")
		ksFlag     = flag.String("k", "2,3,4", "comma-separated domain sizes k (kvalued table)")
		probe      = flag.Duration("probe", 500*time.Millisecond, "stall window for below-bound probes")
		timeout    = flag.Duration("timeout", 5*time.Minute, "overall deadline")
		storeSizes = flag.String("store-sizes", "", "stores table: comma-separated resident-set sizes (default 10,100,10000)")
		agWriter   = flag.Int("agree-writers", 0, "agreement table: concurrent writer clients (default 32)")
		agOps      = flag.Int("agree-ops", 0, "agreement table: ordered write ops (out/inp) per writer (default 60)")
		agReads    = flag.Int("agree-reads", 0, "agreement table: rdp probes per read mode (default 300)")
		agBatch    = flag.Int("agree-batch", 0, "agreement table: batched configuration (default 64)")
		jsonPath   = flag.String("json", "BENCH_agreement.json", "agreement table: machine-readable report path ('' disables)")
		shCounts   = flag.String("shard-counts", "", "shards table: comma-separated shard counts (default 1,4,16)")
		shWriters  = flag.Int("shard-writers", 0, "shards table: concurrent writer clients (default 8)")
		shReaders  = flag.Int("shard-readers", 0, "shards table: concurrent read-only clients (default 8)")
		shReads    = flag.Int("shard-reads", 0, "shards table: fast-path rdp probes per reader (default 400)")
		shResident = flag.Int("shard-resident", 0, "shards table: resident filler tuples the write-quota monitor scans (default 600)")
		shDur      = flag.Duration("shard-duration", 0, "shards table: space-level measurement window per shard count (default 500ms)")
		shJSONPath = flag.String("shards-json", "BENCH_shards.json", "shards table: machine-readable report path ('' disables)")
		txK        = flag.Int("tx-k", 0, "tx table: operations per transaction (default 8)")
		txRounds   = flag.Int("tx-rounds", 0, "tx table: units per mode (default 16)")
		txGroups   = flag.String("tx-groups", "", "tx table: comma-separated fault bounds f (default 1,2)")
		txJSONPath = flag.String("tx-json", "BENCH_tx.json", "tx table: machine-readable report path ('' disables)")
		durOps     = flag.Int("dur-ops", 0, "durable table: committed units per fsync-policy measurement (default 2000)")
		durWALs    = flag.String("dur-wals", "", "durable table: comma-separated WAL lengths for the recovery sweep (default 1000,5000,20000)")
		durJSON    = flag.String("durable-json", "BENCH_durable.json", "durable table: machine-readable report path ('' disables)")
		latOps     = flag.Int("lat-ops", 0, "latency table: Submit calls per mode (default 160)")
		latDepth   = flag.Int("lat-depth", 0, "latency table: SubmitAsync window per Flush in the pipelined mode (default 8)")
		latGroups  = flag.String("lat-groups", "", "latency table: comma-separated fault bounds f (default 1,2)")
		latDelay   = flag.Duration("lat-delay", 0, "latency table: simulated one-way link delay (default 100µs; negative disables)")
		latJSON    = flag.String("latency-json", "BENCH_latency.json", "latency table: machine-readable report path ('' disables)")
		tpSenders  = flag.Int("tp-senders", 0, "transport table: concurrent sender goroutines (default 4)")
		tpFrames   = flag.Int("tp-frames", 0, "transport table: frames per sender (default 20000)")
		tpBytes    = flag.Int("tp-frame-bytes", 0, "transport table: vote-sized payload bytes per frame (default 64)")
		tpVotes    = flag.Int("tp-votes", 0, "transport table: vote round-trips per latency mode (default 1500)")
		tpBulk     = flag.Int("tp-bulk-bytes", 0, "transport table: bytes per concurrent state pack (default 4MiB)")
		tpBulkRate = flag.Int("tp-bulk-mbps", 0, "transport table: state-pack stream rate in MB/s (default 32)")
		tpJSON     = flag.String("transport-json", "BENCH_transport.json", "transport table: machine-readable report path ('' disables)")
		ptWriters  = flag.Int("part-writers", 0, "partitions table: concurrent writer clients (default 16)")
		ptOps      = flag.Int("part-ops", 0, "partitions table: single-partition write ops per writer (default 150)")
		ptGroups   = flag.String("part-groups", "", "partitions table: comma-separated group counts M (default 1,2,4)")
		ptF        = flag.Int("part-f", 0, "partitions table: per-group fault bound of the scaling sweep (default 0)")
		ptCross    = flag.Int("part-cross", 0, "partitions table: cross-partition 2PC submissions per writer (default 40)")
		ptJSON     = flag.String("partitions-json", "BENCH_partitions.json", "partitions table: machine-readable report path ('' disables)")
		version    = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print("peats-bench")
		return
	}
	fmt.Fprintf(os.Stderr, "peats-bench: seed=%d\n", *seed)
	agree := bench.AgreementConfig{
		Writers: *agWriter, OpsPerWriter: *agOps, Reads: *agReads, BatchSize: *agBatch,
	}
	shards := bench.ShardsConfig{
		Writers: *shWriters, Readers: *shReaders, ReadsPerReader: *shReads,
		Resident: *shResident, Duration: *shDur, Seed: *seed,
	}
	tx := bench.TxConfig{K: *txK, Rounds: *txRounds}
	cfg := benchConfig{
		table: *table, ts: *tsFlag, ks: *ksFlag,
		storeSizes: *storeSizes, shardCounts: *shCounts,
		probe: *probe, timeout: *timeout,
		agree: agree, agreeJSON: *jsonPath,
		shards: shards, shardsJSON: *shJSONPath,
		tx: tx, txGroups: *txGroups, txJSON: *txJSONPath,
		durable: bench.DurableConfig{Ops: *durOps}, durWALs: *durWALs, durableJSON: *durJSON,
		latency:   bench.LatencyConfig{Ops: *latOps, Depth: *latDepth, NetDelay: *latDelay},
		latGroups: *latGroups, latencyJSON: *latJSON,
		transport: bench.TransportConfig{
			Senders: *tpSenders, Frames: *tpFrames, FrameBytes: *tpBytes,
			Votes: *tpVotes, BulkBytes: *tpBulk, BulkMBps: *tpBulkRate,
		},
		transportJSON: *tpJSON,
		partitions: bench.PartitionsConfig{
			Writers: *ptWriters, OpsPerWriter: *ptOps, CrossOps: *ptCross, F: *ptF,
		},
		partGroups: *ptGroups, partitionsJSON: *ptJSON,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "peats-bench:", err)
		os.Exit(1)
	}
}

type benchConfig struct {
	table, ts, ks           string
	storeSizes, shardCounts string
	probe, timeout          time.Duration
	agree                   bench.AgreementConfig
	agreeJSON               string
	shards                  bench.ShardsConfig
	shardsJSON              string
	tx                      bench.TxConfig
	txGroups, txJSON        string
	durable                 bench.DurableConfig
	durWALs, durableJSON    string
	latency                 bench.LatencyConfig
	latGroups, latencyJSON  string
	transport               bench.TransportConfig
	transportJSON           string
	partitions              bench.PartitionsConfig
	partGroups              string
	partitionsJSON          string
}

func run(cfg benchConfig) error {
	known := false
	for _, t := range knownTables {
		if cfg.table == t {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown table %q (known tables: %s)",
			cfg.table, strings.Join(knownTables, ", "))
	}
	ts, err := parseInts(cfg.ts)
	if err != nil {
		return fmt.Errorf("-t: %w", err)
	}
	ks, err := parseInts(cfg.ks)
	if err != nil {
		return fmt.Errorf("-k: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()

	want := func(name string) bool { return cfg.table == "all" || cfg.table == name }

	if want("bits") {
		fmt.Println("E1 — memory to solve strong binary consensus (paper §5.2):")
		rows, err := bench.BitsTable(ctx, ts)
		if err != nil {
			return err
		}
		bench.WriteBitsTable(os.Stdout, rows)
		fmt.Println()
	}
	if want("ops") {
		fmt.Println("E8 — measured shared-memory operations, PEATS vs sticky-bit/ACL baseline (§7):")
		rows, err := bench.OpsTable(ctx, ts)
		if err != nil {
			return err
		}
		bench.WriteOpsTable(os.Stdout, rows)
		fmt.Println()
	}
	if want("resilience") {
		fmt.Println("E2 — strong binary consensus resilience bound n ≥ 3t+1 (Cor. 1):")
		bench.WriteResilienceTable(os.Stdout, bench.ResilienceTable(ts, cfg.probe))
		fmt.Println()
	}
	if want("ablation") {
		fmt.Println("Ablations — design-choice costs (DESIGN.md §4):")
		rows, err := bench.AblationTable(ctx, 2000)
		if err != nil {
			return err
		}
		bench.WriteAblationTable(os.Stdout, rows)
		fmt.Println()
	}
	if want("stores") {
		fmt.Println("Storage engines — slice (reference) vs indexed (default), mixed arities:")
		var sizes []int
		if cfg.storeSizes != "" {
			if sizes, err = parseInts(cfg.storeSizes); err != nil {
				return fmt.Errorf("-store-sizes: %w", err)
			}
		}
		rows, err := bench.StoresTable(sizes)
		if err != nil {
			return err
		}
		bench.WriteStoresTable(os.Stdout, rows)
		fmt.Println()
	}
	if want("agreement") {
		fmt.Println("Agreement layer — batched vs unbatched ordering, read-only vs ordered reads (in-proc):")
		rows, err := bench.AgreementTable(ctx, cfg.agree)
		if err != nil {
			return err
		}
		bench.WriteAgreementTable(os.Stdout, rows)
		if cfg.agreeJSON != "" {
			if err := bench.WriteAgreementJSON(cfg.agreeJSON, rows); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", cfg.agreeJSON)
		}
		fmt.Println()
	}
	if want("shards") {
		fmt.Println("Sharded space — read throughput under concurrent writers (space core + in-proc cluster):")
		if cfg.shardCounts != "" {
			if cfg.shards.Shards, err = parseInts(cfg.shardCounts); err != nil {
				return fmt.Errorf("-shard-counts: %w", err)
			}
		}
		rows, err := bench.ShardsTable(ctx, cfg.shards)
		if err != nil {
			return err
		}
		bench.WriteShardsTable(os.Stdout, rows)
		if cfg.shardsJSON != "" {
			if err := bench.WriteShardsJSON(cfg.shardsJSON, rows); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", cfg.shardsJSON)
		}
		fmt.Println()
	}
	if want("tx") {
		fmt.Println("Transactions — atomic k-op Submit vs k sequential round trips (in-proc):")
		if cfg.txGroups != "" {
			if cfg.tx.Groups, err = parseInts(cfg.txGroups); err != nil {
				return fmt.Errorf("-tx-groups: %w", err)
			}
		}
		rows, err := bench.TxTable(ctx, cfg.tx)
		if err != nil {
			return err
		}
		bench.WriteTxTable(os.Stdout, rows)
		if cfg.txJSON != "" {
			if err := bench.WriteTxJSON(cfg.txJSON, rows); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", cfg.txJSON)
		}
		fmt.Println()
	}
	if want("durable") {
		fmt.Println("Durability — WAL commit throughput per fsync policy, recovery time vs WAL length:")
		if cfg.durWALs != "" {
			if cfg.durable.WALLens, err = parseInts(cfg.durWALs); err != nil {
				return fmt.Errorf("-dur-wals: %w", err)
			}
		}
		rows, err := bench.DurableTable(cfg.durable)
		if err != nil {
			return err
		}
		bench.WriteDurableTable(os.Stdout, rows)
		if cfg.durableJSON != "" {
			if err := bench.WriteDurableJSON(cfg.durableJSON, rows); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", cfg.durableJSON)
		}
		fmt.Println()
	}
	if want("latency") {
		fmt.Println("Latency — committed vs tentative replies vs pipelined Submit (in-proc):")
		if cfg.latGroups != "" {
			if cfg.latency.Groups, err = parseInts(cfg.latGroups); err != nil {
				return fmt.Errorf("-lat-groups: %w", err)
			}
		}
		rows, err := bench.LatencyTable(ctx, cfg.latency)
		if err != nil {
			return err
		}
		bench.WriteLatencyTable(os.Stdout, rows)
		if cfg.latencyJSON != "" {
			if err := bench.WriteLatencyJSON(cfg.latencyJSON, rows); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", cfg.latencyJSON)
		}
		fmt.Println()
	}
	if want("transport") {
		fmt.Println("Transport — coalesced vs per-frame writes, vote p99 under a concurrent bulk stream (loopback TCP):")
		rows, err := bench.TransportTable(ctx, cfg.transport)
		if err != nil {
			return err
		}
		bench.WriteTransportTable(os.Stdout, rows)
		if cfg.transportJSON != "" {
			if err := bench.WriteTransportJSON(cfg.transportJSON, rows); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", cfg.transportJSON)
		}
		fmt.Println()
	}
	if want("partitions") {
		fmt.Println("Partitions — aggregate write throughput per group count, 2PC cost, same-budget baseline (in-proc):")
		if cfg.partGroups != "" {
			if cfg.partitions.Groups, err = parseInts(cfg.partGroups); err != nil {
				return fmt.Errorf("-part-groups: %w", err)
			}
		}
		rows, err := bench.PartitionsTable(ctx, cfg.partitions)
		if err != nil {
			return err
		}
		bench.WritePartitionsTable(os.Stdout, rows)
		if cfg.partitionsJSON != "" {
			if err := bench.WritePartitionsJSON(cfg.partitionsJSON, rows); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", cfg.partitionsJSON)
		}
		fmt.Println()
	}
	if want("kvalued") {
		fmt.Println("E3 — k-valued bound n ≥ (k+1)t+1 (Thms. 3-4), t = 1:")
		bench.WriteKValuedTable(os.Stdout, bench.KValuedTable(ks, []int{1}, cfg.probe))
		fmt.Println()
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be ≥ 1", v)
		}
		out = append(out, v)
	}
	return out, nil
}
