// peats-bench regenerates the paper's evaluation tables on the running
// implementation (see DESIGN.md §4 for the experiment index):
//
//	peats-bench -table bits        E1: memory comparison (§5.2, fn. 3-4)
//	peats-bench -table ops         E8: operation counts vs ACL baseline (§7)
//	peats-bench -table resilience  E2: n ≥ 3t+1 bound (Thm. 2 / Cor. 1)
//	peats-bench -table kvalued     E3: n ≥ (k+1)t+1 bound (Thms. 3-4)
//	peats-bench -table stores      storage-engine comparison (slice vs indexed)
//	peats-bench -table agreement   agreement layer: batched vs unbatched, read-only vs ordered
//	peats-bench -table all         everything
//
// The agreement table additionally writes a machine-readable report to
// -json (default BENCH_agreement.json); size it with -agree-writers,
// -agree-ops, -agree-reads and -agree-batch.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"peats/internal/bench"
)

func main() {
	var (
		table    = flag.String("table", "all", "table to print: bits|ops|resilience|kvalued|ablation|stores|agreement|all")
		tsFlag   = flag.String("t", "1,2,3,4", "comma-separated fault bounds t")
		ksFlag   = flag.String("k", "2,3,4", "comma-separated domain sizes k (kvalued table)")
		probe    = flag.Duration("probe", 500*time.Millisecond, "stall window for below-bound probes")
		timeout  = flag.Duration("timeout", 5*time.Minute, "overall deadline")
		agWriter = flag.Int("agree-writers", 0, "agreement table: concurrent writer clients (default 32)")
		agOps    = flag.Int("agree-ops", 0, "agreement table: ordered write ops (out/inp) per writer (default 60)")
		agReads  = flag.Int("agree-reads", 0, "agreement table: rdp probes per read mode (default 300)")
		agBatch  = flag.Int("agree-batch", 0, "agreement table: batched configuration (default 64)")
		jsonPath = flag.String("json", "BENCH_agreement.json", "agreement table: machine-readable report path ('' disables)")
	)
	flag.Parse()
	agree := bench.AgreementConfig{
		Writers: *agWriter, OpsPerWriter: *agOps, Reads: *agReads, BatchSize: *agBatch,
	}
	if err := run(*table, *tsFlag, *ksFlag, *probe, *timeout, agree, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "peats-bench:", err)
		os.Exit(1)
	}
}

func run(table, tsFlag, ksFlag string, probe, timeout time.Duration, agree bench.AgreementConfig, jsonPath string) error {
	ts, err := parseInts(tsFlag)
	if err != nil {
		return fmt.Errorf("-t: %w", err)
	}
	ks, err := parseInts(ksFlag)
	if err != nil {
		return fmt.Errorf("-k: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	want := func(name string) bool { return table == "all" || table == name }
	printed := false

	if want("bits") {
		fmt.Println("E1 — memory to solve strong binary consensus (paper §5.2):")
		rows, err := bench.BitsTable(ctx, ts)
		if err != nil {
			return err
		}
		bench.WriteBitsTable(os.Stdout, rows)
		fmt.Println()
		printed = true
	}
	if want("ops") {
		fmt.Println("E8 — measured shared-memory operations, PEATS vs sticky-bit/ACL baseline (§7):")
		rows, err := bench.OpsTable(ctx, ts)
		if err != nil {
			return err
		}
		bench.WriteOpsTable(os.Stdout, rows)
		fmt.Println()
		printed = true
	}
	if want("resilience") {
		fmt.Println("E2 — strong binary consensus resilience bound n ≥ 3t+1 (Cor. 1):")
		bench.WriteResilienceTable(os.Stdout, bench.ResilienceTable(ts, probe))
		fmt.Println()
		printed = true
	}
	if want("ablation") {
		fmt.Println("Ablations — design-choice costs (DESIGN.md §4):")
		rows, err := bench.AblationTable(ctx, 2000)
		if err != nil {
			return err
		}
		bench.WriteAblationTable(os.Stdout, rows)
		fmt.Println()
		printed = true
	}
	if want("stores") {
		fmt.Println("Storage engines — slice (reference) vs indexed (default), mixed arities:")
		rows, err := bench.StoresTable(nil)
		if err != nil {
			return err
		}
		bench.WriteStoresTable(os.Stdout, rows)
		fmt.Println()
		printed = true
	}
	if want("agreement") {
		fmt.Println("Agreement layer — batched vs unbatched ordering, read-only vs ordered reads (in-proc):")
		rows, err := bench.AgreementTable(ctx, agree)
		if err != nil {
			return err
		}
		bench.WriteAgreementTable(os.Stdout, rows)
		if jsonPath != "" {
			if err := bench.WriteAgreementJSON(jsonPath, rows); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", jsonPath)
		}
		fmt.Println()
		printed = true
	}
	if want("kvalued") {
		fmt.Println("E3 — k-valued bound n ≥ (k+1)t+1 (Thms. 3-4), t = 1:")
		bench.WriteKValuedTable(os.Stdout, bench.KValuedTable(ks, []int{1}, probe))
		fmt.Println()
		printed = true
	}
	if !printed {
		return fmt.Errorf("unknown table %q", table)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be ≥ 1", v)
		}
		out = append(out, v)
	}
	return out, nil
}
