package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"peats/internal/metrics"
)

// fakeReplica serves a registry plus a /status document the way
// peats-server's -metrics-addr endpoint does, and returns the bare
// host:port the admin commands take.
func fakeReplica(t *testing.T, id string) (string, *metrics.Counter) {
	t.Helper()
	reg := metrics.New()
	lbl := metrics.L("replica", id)
	batches := reg.Counter("peats_bft_batches_proposed_total", "Batches.", lbl)
	_ = reg.Counter("peats_bft_requests_executed_total", "Requests.", lbl)
	h := reg.Histogram("peats_bft_batch_fill", "Fill.", metrics.SizeBuckets, lbl)
	h.Observe(3)

	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.Handle("/status", metrics.StatusHandler(func() any {
		return map[string]any{
			"replica":          id,
			"view":             1,
			"executed":         42,
			"low_water":        16,
			"batches_proposed": 7,
			"log_records":      5,
			"engine":           "indexed",
			"shards":           4,
		}
	}))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://"), batches
}

func TestAdminStatus(t *testing.T) {
	addr, _ := fakeReplica(t, "r0")
	var out strings.Builder
	if err := cmdStatus(&out, []string{addr}); err != nil {
		t.Fatalf("status: %v", err)
	}
	got := out.String()
	for _, want := range []string{"REPLICA", "r0", "42", "indexed/4"} {
		if !strings.Contains(got, want) {
			t.Errorf("status output missing %q:\n%s", want, got)
		}
	}

	out.Reset()
	if err := cmdStatus(&out, []string{"-json", addr}); err != nil {
		t.Fatalf("status -json: %v", err)
	}
	if !strings.Contains(out.String(), `"executed": 42`) {
		t.Errorf("status -json output missing executed:\n%s", out.String())
	}
}

func TestAdminStatusUnreachable(t *testing.T) {
	var out strings.Builder
	if err := cmdStatus(&out, []string{"127.0.0.1:1"}); err != nil {
		t.Fatalf("status should report unreachable endpoints in-line, got error: %v", err)
	}
	if !strings.Contains(out.String(), "unreachable") {
		t.Errorf("status output missing unreachable marker:\n%s", out.String())
	}
}

func TestAdminMetrics(t *testing.T) {
	addr, c := fakeReplica(t, "r0")
	c.Add(9)

	var out strings.Builder
	if err := cmdMetrics(&out, []string{addr}); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "# TYPE peats_bft_batches_proposed_total counter") {
		t.Errorf("metrics output missing TYPE line:\n%s", got)
	}
	if !strings.Contains(got, `peats_bft_batches_proposed_total{replica="r0"} 9`) {
		t.Errorf("metrics output missing counter value:\n%s", got)
	}

	out.Reset()
	if err := cmdMetrics(&out, []string{"-json", addr}); err != nil {
		t.Fatalf("metrics -json: %v", err)
	}
	if !strings.Contains(out.String(), `"name": "peats_bft_batch_fill"`) {
		t.Errorf("metrics -json output missing histogram family:\n%s", out.String())
	}
	// The +Inf bucket must survive the JSON path.
	if !strings.Contains(out.String(), `"le": "+Inf"`) {
		t.Errorf("metrics -json output missing +Inf bucket:\n%s", out.String())
	}
}

func TestAdminTop(t *testing.T) {
	addr0, c0 := fakeReplica(t, "r0")
	addr1, c1 := fakeReplica(t, "r1")

	// Drive one counter between the two samples so top has a rate to
	// rank. The bump goroutine outpaces the 50ms interval comfortably.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				c0.Inc()
				c1.Add(2)
			}
		}
	}()

	var out strings.Builder
	err := cmdTop(&out, []string{"-n", "2", "-interval", "50ms", "-plain", addr0, addr1})
	if err != nil {
		t.Fatalf("top: %v", err)
	}
	got := out.String()
	for _, want := range []string{"REPLICA", "r0", "r1", "peats_bft_batches_proposed_total", "TOTAL"} {
		if !strings.Contains(got, want) {
			t.Errorf("top output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "\x1b[2J") {
		t.Errorf("-plain must not clear the screen:\n%s", got)
	}
}
