// peats-admin inspects running peats-server replicas through their
// -metrics-addr endpoints:
//
//	peats-admin status 127.0.0.1:9100 127.0.0.1:9101 ...
//	peats-admin metrics -json 127.0.0.1:9100
//	peats-admin top -interval 2s 127.0.0.1:9100 127.0.0.1:9101 ...
//
// status prints one line per replica (view, executed sequence, stable
// checkpoint, batches, store shape). metrics dumps one endpoint's
// registry, Prometheus text by default or the JSON snapshot with
// -json. top refreshes a live view: per-replica protocol positions
// plus the hottest counters across the fleet, ranked by rate since the
// previous sample.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"peats/internal/buildinfo"
	"peats/internal/metrics"
)

func main() {
	version := flag.Bool("version", false, "print build version and exit")
	flag.Usage = usage
	flag.Parse()
	if *version {
		buildinfo.Print("peats-admin")
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "status":
		err = cmdStatus(os.Stdout, rest)
	case "metrics":
		err = cmdMetrics(os.Stdout, rest)
	case "top":
		err = cmdTop(os.Stdout, rest)
	default:
		fmt.Fprintf(os.Stderr, "peats-admin: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "peats-admin:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  peats-admin status [-json] <host:port>...
  peats-admin metrics [-json] <host:port>
  peats-admin top [-interval d] [-n iterations] [-plain] <host:port>...

Endpoints are peats-server -metrics-addr addresses.
`)
}

// replicaStatus mirrors the server's /status document.
type replicaStatus struct {
	Replica  string         `json:"replica"`
	Group    string         `json:"group"`
	View     uint64         `json:"view"`
	Executed uint64         `json:"executed"`
	LowWater uint64         `json:"low_water"`
	Batches  uint64         `json:"batches_proposed"`
	Records  int64          `json:"log_records"`
	Policy   string         `json:"policy"`
	Engine   string         `json:"engine"`
	Shards   int            `json:"shards"`
	F        int            `json:"f"`
	Build    buildinfo.Info `json:"build"`
}

var httpClient = &http.Client{Timeout: 5 * time.Second}

func fetchStatus(addr string) (replicaStatus, error) {
	var st replicaStatus
	resp, err := httpClient.Get("http://" + addr + "/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s: /status returned %s", addr, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("%s: %w", addr, err)
	}
	return st, nil
}

func fetchSnapshot(addr string) (metrics.Snapshot, error) {
	var snap metrics.Snapshot
	resp, err := httpClient.Get("http://" + addr + "/metrics?format=json")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s: /metrics returned %s", addr, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("%s: %w", addr, err)
	}
	return snap, nil
}

// ---- status ----

func cmdStatus(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "print the raw status documents")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := fs.Args()
	if len(addrs) == 0 {
		return fmt.Errorf("status: need at least one endpoint")
	}
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		for _, addr := range addrs {
			st, err := fetchStatus(addr)
			if err != nil {
				return err
			}
			if err := enc.Encode(st); err != nil {
				return err
			}
		}
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "REPLICA\tGROUP\tVIEW\tEXECUTED\tLOW-WATER\tBATCHES\tRECORDS\tSTORE\tBUILD")
	for _, addr := range addrs {
		st, err := fetchStatus(addr)
		if err != nil {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\t-\t-\tunreachable: %v\n", addr, err)
			continue
		}
		group := st.Group
		if group == "" {
			group = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s/%d\t%s\n",
			st.Replica, group, st.View, st.Executed, st.LowWater,
			st.Batches, st.Records, st.Engine, st.Shards, st.Build.Revision)
	}
	return tw.Flush()
}

// ---- metrics ----

func cmdMetrics(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "dump the JSON snapshot instead of Prometheus text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("metrics: need exactly one endpoint")
	}
	url := "http://" + fs.Arg(0) + "/metrics"
	if *asJSON {
		url += "?format=json"
	}
	resp, err := httpClient.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s returned %s", url, resp.Status)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// ---- top ----

// counterKey identifies one counter series fleet-wide: family name
// plus its sorted non-replica labels.
type counterKey struct {
	family string
	labels string
}

// sample is one scrape of one endpoint, reduced to counter values.
type sample struct {
	status   replicaStatus
	counters map[counterKey]float64
	err      error
}

func scrape(addr string) sample {
	s := sample{counters: make(map[counterKey]float64)}
	s.status, s.err = fetchStatus(addr)
	if s.err != nil {
		return s
	}
	snap, err := fetchSnapshot(addr)
	if err != nil {
		s.err = err
		return s
	}
	for _, f := range snap.Families {
		if f.Kind != "counter" {
			continue
		}
		for _, series := range f.Series {
			var extra []string
			for k, v := range series.Labels {
				if k == "replica" {
					continue
				}
				extra = append(extra, k+"="+v)
			}
			sort.Strings(extra)
			key := counterKey{family: f.Name, labels: strings.Join(extra, ",")}
			s.counters[key] += series.Value
		}
	}
	return s
}

func cmdTop(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	iterations := fs.Int("n", 0, "stop after this many refreshes (0 = run until interrupted)")
	plain := fs.Bool("plain", false, "append refreshes instead of clearing the screen")
	rows := fs.Int("rows", 12, "hottest counters to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := fs.Args()
	if len(addrs) == 0 {
		return fmt.Errorf("top: need at least one endpoint")
	}
	prev := make([]sample, len(addrs))
	for i, addr := range addrs {
		prev[i] = scrape(addr)
	}
	for n := 0; *iterations == 0 || n < *iterations; n++ {
		time.Sleep(*interval)
		cur := make([]sample, len(addrs))
		for i, addr := range addrs {
			cur[i] = scrape(addr)
		}
		if !*plain {
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		renderTop(w, addrs, prev, cur, *interval, *rows)
		prev = cur
	}
	return nil
}

// renderTop prints the per-replica protocol line and the counters with
// the highest fleet-wide rate since the previous sample.
func renderTop(w io.Writer, addrs []string, prev, cur []sample, interval time.Duration, rows int) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "REPLICA\tVIEW\tEXECUTED\tLOW-WATER\tRECORDS")
	for i, addr := range addrs {
		if cur[i].err != nil {
			fmt.Fprintf(tw, "%s\t-\t-\t-\tunreachable: %v\n", addr, cur[i].err)
			continue
		}
		st := cur[i].status
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", st.Replica, st.View, st.Executed, st.LowWater, st.Records)
	}
	tw.Flush()

	// Rank counters by total rate across the fleet.
	type hot struct {
		key  counterKey
		rate float64
	}
	rates := make(map[counterKey]float64)
	perReplica := make(map[counterKey][]float64)
	for i := range addrs {
		if prev[i].err != nil || cur[i].err != nil {
			continue
		}
		for key, v := range cur[i].counters {
			d := (v - prev[i].counters[key]) / interval.Seconds()
			if d < 0 {
				d = 0 // restarted replica: treat as fresh
			}
			rates[key] += d
			if perReplica[key] == nil {
				perReplica[key] = make([]float64, len(addrs))
			}
			perReplica[key][i] = d
		}
	}
	hots := make([]hot, 0, len(rates))
	for key, r := range rates {
		hots = append(hots, hot{key, r})
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].rate != hots[j].rate {
			return hots[i].rate > hots[j].rate
		}
		if hots[i].key.family != hots[j].key.family {
			return hots[i].key.family < hots[j].key.family
		}
		return hots[i].key.labels < hots[j].key.labels
	})
	if len(hots) > rows {
		hots = hots[:rows]
	}

	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "COUNTER (per second)"
	for i := range addrs {
		name := addrs[i]
		if cur[i].err == nil && cur[i].status.Replica != "" {
			name = cur[i].status.Replica
		}
		header += "\t" + name
	}
	fmt.Fprintln(tw, header+"\tTOTAL")
	for _, h := range hots {
		name := h.key.family
		if h.key.labels != "" {
			name += "{" + h.key.labels + "}"
		}
		line := name
		for i := range addrs {
			if pr := perReplica[h.key]; pr != nil {
				line += fmt.Sprintf("\t%s", formatRate(pr[i]))
			} else {
				line += "\t-"
			}
		}
		fmt.Fprintf(tw, "%s\t%s\n", line, formatRate(h.rate))
	}
	tw.Flush()
}

func formatRate(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}
