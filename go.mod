module peats

go 1.24
