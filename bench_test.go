package peats

// Benchmark harness: one bench family per experiment in DESIGN.md §4.
// Run everything with
//
//	go test -bench=. -benchmem .
//
// The absolute numbers depend on the host; the experiment claims are
// about shape (who wins, how costs scale with t, f and contention) and
// are asserted in the test suites. Custom metrics report the paper's
// units: bits stored, shared-memory operations, replicas contacted.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"peats/internal/acl"
	"peats/internal/auth"
	"peats/internal/bench"
	"peats/internal/bft"
	"peats/internal/consensus"
	"peats/internal/policy"
	"peats/internal/transport"
	"peats/internal/tuple"
	"peats/internal/universal"
)

// ---- E12: PEATS primitive operations, local space ----

func BenchmarkSpaceOut(b *testing.B) {
	s := NewSpace(AllowAll())
	h := s.Handle("p")
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		if err := h.Out(ctx, T(Str("BENCH"), Int(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpaceRdp(b *testing.B) {
	s := NewSpace(AllowAll())
	h := s.Handle("p")
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if err := h.Out(ctx, T(Str("BENCH"), Int(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
	tmpl := T(Str("BENCH"), Formal("v"))
	b.ReportAllocs()
	for b.Loop() {
		if _, ok, err := h.Rdp(ctx, tmpl); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkSpaceCas(b *testing.B) {
	s := NewSpace(AllowAll())
	h := s.Handle("p")
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		tmpl := T(Str("C"), Int(int64(i)), Formal("x"))
		entry := T(Str("C"), Int(int64(i)), Int(1))
		if ins, _, err := h.Cas(ctx, tmpl, entry); err != nil || !ins {
			b.Fatal(ins, err)
		}
	}
}

// ---- Ablation: reference-monitor overhead (§7's "little extra
// processing") — the same workload with and without policy evaluation.

func BenchmarkPolicyOverhead(b *testing.B) {
	run := func(b *testing.B, pol Policy) {
		s := NewSpace(pol)
		h := s.Handle("p0")
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; b.Loop(); i++ {
			entry := T(Str("PROPOSE"), Str("p0"), Int(int64(i)))
			if err := h.Out(ctx, entry); err != nil {
				b.Fatal(err)
			}
			if _, _, err := h.Rdp(ctx, T(Str("PROPOSE"), Str("p0"), Formal("v"))); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("allow-all", func(b *testing.B) { run(b, AllowAll()) })
	b.Run("stateful-policy", func(b *testing.B) {
		// A strong-consensus-shaped policy with state-dependent rules,
		// relaxed to admit the benchmark's repeated proposals.
		pol := NewPolicy(
			Rule{Name: "Rrdp", Op: policy.OpRdp, When: policy.Always},
			Rule{Name: "Rout", Op: policy.OpOut, When: policy.And(
				policy.EntryArity(3),
				policy.EntryField(0, Str("PROPOSE")),
				policy.EntryFieldIsInvoker(1),
			)},
		)
		run(b, pol)
	})
}

// ---- E4: weak consensus (Alg. 1) ----

func BenchmarkWeakConsensus(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		s := NewSpace(consensus.WeakPolicy())
		c := consensus.NewWeak(s.Handle("p0"))
		if _, err := c.Propose(ctx, Int(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E1/E8: strong consensus (Alg. 2) across fault bounds, with the
// paper's units as custom metrics ----

func BenchmarkStrongConsensus(b *testing.B) {
	for _, t := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			ctx := context.Background()
			var lastRun bench.StrongRun
			for b.Loop() {
				run, err := bench.RunStrongConsensus(ctx, t)
				if err != nil {
					b.Fatal(err)
				}
				lastRun = run
			}
			b.ReportMetric(float64(lastRun.MeasuredBits), "space-bits")
			b.ReportMetric(float64(lastRun.Outs+lastRun.Reads+lastRun.Cas), "shm-ops")
			b.ReportMetric(float64(acl.PEATSBits(lastRun.N, t)), "paper-bits")
		})
	}
}

// ---- E5: default multivalued consensus ----

func BenchmarkDefaultConsensus(b *testing.B) {
	const t = 1
	procs := []ProcessID{"p0", "p1", "p2", "p3"}
	ctx := context.Background()
	b.ReportAllocs()
	for b.Loop() {
		s := NewSpace(consensus.DefaultPolicy(procs, t))
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := consensus.NewDefault(s.Handle(procs[i]), consensus.DefaultConfig{
					Self: procs[i], Procs: procs, T: t,
					PollInterval: 50 * time.Microsecond,
				})
				if err != nil {
					b.Error(err)
					return
				}
				if _, err := c.Propose(ctx, 7); err != nil {
					b.Error(err)
				}
			}(i)
		}
		wg.Wait()
	}
}

// ---- E8 baseline: sticky-bit/ACL grouped consensus ----

func BenchmarkACLStickyConsensus(b *testing.B) {
	for _, t := range []int{1, 2} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			ctx := context.Background()
			var ops int64
			var procs int
			for b.Loop() {
				c := acl.NewGroupedConsensus(t, 50*time.Microsecond)
				n := len(c.Procs())
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						if _, err := c.Propose(ctx, i, int64(i%2)); err != nil {
							b.Error(err)
						}
					}(i)
				}
				wg.Wait()
				ops, procs = c.TotalOps(), n
			}
			b.ReportMetric(float64(ops), "shm-ops")
			b.ReportMetric(float64(procs), "processes")
		})
	}
}

// ---- E6: lock-free universal construction ----

func BenchmarkLockFreeUniversalSolo(b *testing.B) {
	s := NewSpace(universal.LockFreePolicy())
	u := universal.NewLockFree(s.Handle("p0"), universal.CounterType{})
	ctx := context.Background()
	b.ReportAllocs()
	for b.Loop() {
		if _, err := u.Invoke(ctx, universal.CounterInc()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockFreeUniversalContended(b *testing.B) {
	for _, procs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			s := NewSpace(universal.LockFreePolicy())
			ctx := context.Background()
			var wg sync.WaitGroup
			per := b.N/procs + 1
			b.ResetTimer()
			for p := 0; p < procs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					id := ProcessID(fmt.Sprintf("p%d", p))
					u := universal.NewLockFree(s.Handle(id), universal.CounterType{})
					for i := 0; i < per; i++ {
						if _, err := u.Invoke(ctx, universal.CounterInc()); err != nil {
							b.Error(err)
							return
						}
					}
				}(p)
			}
			wg.Wait()
		})
	}
}

// ---- E7 + helping-overhead ablation: wait-free universal construction ----

func BenchmarkWaitFreeUniversalSolo(b *testing.B) {
	// Compare directly against BenchmarkLockFreeUniversalSolo: the
	// difference is the cost of the ANN announce/withdraw protocol and
	// the helping checks when there is no contention.
	procs := []ProcessID{"p0", "p1", "p2"}
	s := NewSpace(universal.WaitFreePolicy(procs))
	u, err := universal.NewWaitFree(s.Handle("p0"), universal.CounterType{}, "p0", procs)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for b.Loop() {
		if _, err := u.Invoke(ctx, universal.CounterInc()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaitFreeUniversalContended(b *testing.B) {
	for _, procs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			ids := make([]ProcessID, procs)
			for i := range ids {
				ids[i] = ProcessID(fmt.Sprintf("p%d", i))
			}
			s := NewSpace(universal.WaitFreePolicy(ids))
			ctx := context.Background()
			var wg sync.WaitGroup
			per := b.N/procs + 1
			b.ResetTimer()
			for p := 0; p < procs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					u, err := universal.NewWaitFree(s.Handle(ids[p]), universal.CounterType{}, ids[p], ids)
					if err != nil {
						b.Error(err)
						return
					}
					for i := 0; i < per; i++ {
						if _, err := u.Invoke(ctx, universal.CounterInc()); err != nil {
							b.Error(err)
							return
						}
					}
				}(p)
			}
			wg.Wait()
		})
	}
}

// ---- E9/E12 + quorum ablation: replicated PEATS ----

func benchCluster(b *testing.B, f int) *bft.Cluster {
	b.Helper()
	n := 3*f + 1
	services := make([]bft.Service, n)
	for i := range services {
		services[i] = bft.NewSpaceService(policy.AllowAll())
	}
	cl, err := bft.NewCluster(f, services)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Stop)
	return cl
}

func BenchmarkReplicatedOut(b *testing.B) {
	for _, f := range []int{1, 2} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			cl := benchCluster(b, f)
			ts := bft.NewRemoteSpace(cl.Client("bench"))
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; b.Loop(); i++ {
				if err := ts.Out(ctx, T(Str("R"), Int(int64(i)))); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(3*f+1), "replicas")
		})
	}
}

func BenchmarkReplicatedCas(b *testing.B) {
	cl := benchCluster(b, 1)
	ts := bft.NewRemoteSpace(cl.Client("bench"))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		tmpl := T(Str("C"), Int(int64(i)), Formal("x"))
		entry := T(Str("C"), Int(int64(i)), Int(1))
		if ins, _, err := ts.Cas(ctx, tmpl, entry); err != nil || !ins {
			b.Fatal(ins, err)
		}
	}
}

func BenchmarkReplicatedPayload(b *testing.B) {
	for _, size := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			cl := benchCluster(b, 1)
			ts := bft.NewRemoteSpace(cl.Client("bench"))
			ctx := context.Background()
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; b.Loop(); i++ {
				if err := ts.Out(ctx, T(Str("P"), Int(int64(i)), Bytes(payload))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplicatedOutTCP measures the replicated space over real TCP
// loopback with HMAC-authenticated frames (the deployment substrate of
// cmd/peats-server).
func BenchmarkReplicatedOutTCP(b *testing.B) {
	const f = 1
	ids := []string{"r0", "r1", "r2", "r3"}
	master := []byte("bench-master")
	everyone := append([]string{"bench"}, ids...)

	addrs := make(map[string]string)
	trs := make([]*transport.TCP, 0, len(ids))
	for _, id := range ids {
		kr := auth.NewKeyringFromMaster(master, id, everyone)
		tr, err := transport.NewTCP(id, "127.0.0.1:0", addrs, kr)
		if err != nil {
			b.Fatal(err)
		}
		trs = append(trs, tr)
		addrs[id] = tr.Addr()
	}
	for _, tr := range trs {
		for id, addr := range addrs {
			tr.SetPeerAddr(id, addr)
		}
	}
	var reps []*bft.Replica
	for i, id := range ids {
		rep, err := bft.NewReplica(bft.ReplicaConfig{
			ID: id, Replicas: ids, F: f,
			Transport: trs[i],
			Service:   bft.NewSpaceService(policy.AllowAll()),
		})
		if err != nil {
			b.Fatal(err)
		}
		rep.Start()
		reps = append(reps, rep)
	}
	kr := auth.NewKeyringFromMaster(master, "bench", everyone)
	ctr, err := transport.NewTCP("bench", "127.0.0.1:0", addrs, kr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
		for _, tr := range trs {
			_ = tr.Close()
		}
		_ = ctr.Close()
	})
	ts := bft.NewRemoteSpace(bft.NewClient(ctr, ids, f))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		if err := ts.Out(ctx, T(Str("TCP"), Int(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E11: two-process consensus on a plain tuple space ----

func BenchmarkTwoProcessConsensus(b *testing.B) {
	ctx := context.Background()
	for b.Loop() {
		s := consensus.NewTwoProcessSpace("a", "b")
		c := consensus.NewTwoProcess(s.Handle("a"), "a", "b")
		if _, err := c.Propose(ctx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Raw building blocks, for profile orientation ----

func BenchmarkTupleMatch(b *testing.B) {
	entry := tuple.T(tuple.Str("PROPOSE"), tuple.Str("p12"), tuple.Int(1))
	tmpl := tuple.T(tuple.Str("PROPOSE"), tuple.Any(), tuple.Formal("v"))
	b.ReportAllocs()
	for b.Loop() {
		if !tuple.Matches(entry, tmpl) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkTupleEncode(b *testing.B) {
	tu := tuple.T(tuple.Str("SEQ"), tuple.Int(123456), tuple.Bytes(make([]byte, 64)))
	b.ReportAllocs()
	for b.Loop() {
		if len(tuple.Encode(tu)) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

func BenchmarkHMACFrame(b *testing.B) {
	kr := auth.NewKeyringFromMaster([]byte("m"), "a", []string{"a", "b"})
	msg := make([]byte, 256)
	b.SetBytes(256)
	b.ReportAllocs()
	for b.Loop() {
		if _, err := kr.MAC("b", msg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Storage engines (slice reference vs indexed default) ----
//
// One bench per (engine, size, op) through the public PEATS API, so the
// measured path includes the reference monitor — the cost a real client
// pays. The probed tuple sits behind size-1 others of mixed arities,
// the linear scan's worst case.

func engineSpace(b *testing.B, eng StoreEngine, size int) *Handle {
	b.Helper()
	s := NewSpace(AllowAll(), WithStore(eng))
	h := s.Handle("bench")
	ctx := context.Background()
	for i := 0; i < size-1; i++ {
		tag := fmt.Sprintf("tag%d", i%17)
		var t Tuple
		if i%2 == 0 {
			t = T(Str(tag), Int(int64(i)))
		} else {
			t = T(Str(tag), Int(int64(i)), Bool(true))
		}
		if err := h.Out(ctx, t); err != nil {
			b.Fatal(err)
		}
	}
	if err := h.Out(ctx, T(Str("needle"), Int(0))); err != nil {
		b.Fatal(err)
	}
	return h
}

func BenchmarkEngineRdp(b *testing.B) {
	ctx := context.Background()
	tmpl := T(Str("needle"), Any())
	for _, eng := range []StoreEngine{SliceStore, IndexedStore} {
		for _, size := range []int{10, 100, 10000} {
			b.Run(fmt.Sprintf("%s/n=%d", eng, size), func(b *testing.B) {
				h := engineSpace(b, eng, size)
				b.ReportAllocs()
				b.ResetTimer()
				for b.Loop() {
					if _, ok, err := h.Rdp(ctx, tmpl); err != nil || !ok {
						b.Fatal("needle not found")
					}
				}
			})
		}
	}
}

func BenchmarkEngineInp(b *testing.B) {
	ctx := context.Background()
	tmpl := T(Str("needle"), Any())
	entry := T(Str("needle"), Int(0))
	for _, eng := range []StoreEngine{SliceStore, IndexedStore} {
		for _, size := range []int{10, 100, 10000} {
			b.Run(fmt.Sprintf("%s/n=%d", eng, size), func(b *testing.B) {
				h := engineSpace(b, eng, size)
				b.ReportAllocs()
				b.ResetTimer()
				for b.Loop() {
					if _, ok, err := h.Inp(ctx, tmpl); err != nil || !ok {
						b.Fatal("needle not found")
					}
					if err := h.Out(ctx, entry); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkEngineCas(b *testing.B) {
	ctx := context.Background()
	tmpl := T(Str("absent"), Any())
	entry := T(Str("absent"), Int(1))
	for _, eng := range []StoreEngine{SliceStore, IndexedStore} {
		for _, size := range []int{10, 100, 10000} {
			b.Run(fmt.Sprintf("%s/n=%d", eng, size), func(b *testing.B) {
				h := engineSpace(b, eng, size)
				b.ReportAllocs()
				b.ResetTimer()
				for b.Loop() {
					ins, _, err := h.Cas(ctx, tmpl, entry)
					if err != nil || !ins {
						b.Fatal("cas did not insert")
					}
					if _, ok, err := h.Inp(ctx, tmpl); err != nil || !ok {
						b.Fatal("cas entry vanished")
					}
				}
			})
		}
	}
}
